package experiments

import (
	"fmt"
	"strings"

	"amac/internal/adapt"
	"amac/internal/arena"
	"amac/internal/bst"
	"amac/internal/ht"
	"amac/internal/memsim"
	"amac/internal/obs"
	"amac/internal/ops"
	"amac/internal/pipeline"
	"amac/internal/profile"
	"amac/internal/relation"
	"amac/internal/serve"
)

func init() {
	register(Descriptor{
		ID:    "pipeN",
		Title: "Streaming multi-operator pipelines: cost-seeded mini-planner versus uniform and exhaustive static per-stage assignments",
		Run:   pipeN,
	})
}

// pipeSizes are the pipeN workload knobs, split from the scale table so the
// shape tests can run the same machinery on a scaled hierarchy.
type pipeSizes struct {
	rows   int // root probe rows per plan
	build  int // DRAM-resident build-table cardinality
	dim    int // cache-resident dimension table of the mixed chain plan
	bst    int // BST size of the probe→filter plan
	groups int // aggregation group count
	sample int // mini-planner root sample size

	// burst and pipeCap override the pipeline pump lease size and the
	// inter-stage pipe capacity (zero keeps the pipeline defaults). They are
	// CLI knobs (-burst/-pipecap), not scale-dependent.
	burst   int
	pipeCap int
}

// The pipeN plan names, hoisted so the -plans filter can be validated
// without materializing any workload.
const (
	pipeAggPlan   = "build→probe→aggregate (steady)"
	pipeBSTPlan   = "probe→BST filter (steady)"
	pipeChainPlan = "3-way join chain (mixed)"
)

// pipePlanNames lists every pipeN plan in execution order.
var pipePlanNames = []string{pipeAggPlan, pipeBSTPlan, pipeChainPlan}

// PipePlanNames returns the names of the pipeline experiment's plans, in the
// order pipeN runs them.
func PipePlanNames() []string { return append([]string(nil), pipePlanNames...) }

// ValidatePipePlans checks a Config.Plans filter: comma-separated,
// case-insensitive substring tokens, each of which must match at least one
// pipeN plan name. The empty filter (run everything) is valid.
func ValidatePipePlans(filter string) error {
	_, err := selectPipePlans(filter)
	return err
}

// selectPipePlans resolves a Plans filter to the set of selected plan names
// (nil means every plan).
func selectPipePlans(filter string) (map[string]bool, error) {
	if filter == "" {
		return nil, nil
	}
	sel := make(map[string]bool)
	for _, tok := range strings.Split(filter, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return nil, fmt.Errorf("experiments: empty token in plan filter %q", filter)
		}
		matched := false
		for _, name := range pipePlanNames {
			if strings.Contains(strings.ToLower(name), strings.ToLower(tok)) {
				sel[name] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("experiments: plan filter token %q matches no pipeN plan (have: %s)", tok, strings.Join(pipePlanNames, "; "))
		}
	}
	return sel, nil
}

// pipeKey identifies one materialized pipeline workload in a workloadSet.
// The LLC size is part of the key because the cached mini-planner choice
// depends on the machine the sampling ran on.
type pipeKey struct {
	kind                             string
	rows, build, aux, groups, sample int
	burst, pipeCap                   int
	seed                             uint64
	llc                              int
}

// pipeWorkload is one materialized pipeline plan: the builder (whose charged
// pipe windows and planner scratch are allocated eagerly, so every sweep
// worker's copy performs the identical arena allocation sequence), the sink
// collector, and the mini-planner's cached choice. Probed structures are
// read-only under every run, the Output resets per cell — the probeJoin
// reuse contract.
type pipeWorkload struct {
	b      *pipeline.Builder
	out    *ops.Output
	rows   int
	choice pipeline.PlanChoice
}

// pipeWorkload returns the set's cached pipeline workload for the key,
// materializing it on first use.
func (ws *workloadSet) pipeWorkload(key pipeKey, build func() *pipeWorkload) *pipeWorkload {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.pipes.get(key, build)
}

// pipeCell is one measured pipeline run.
type pipeCell struct {
	cycles uint64
	rows   int
}

func (c pipeCell) cyclesPerRow() float64 {
	if c.rows == 0 {
		return 0
	}
	return float64(c.cycles) / float64(c.rows)
}

// pipePlan is one multi-operator plan of the pipeN sweep, closed over its
// deterministic workload materialization.
type pipePlan struct {
	name   string
	stages int
	// mixed marks the plan whose stages sit in different regimes — the one
	// the planner must beat every uniform assignment on.
	mixed bool

	choice   func(e *sweepEnv) pipeline.PlanChoice
	run      func(e *sweepEnv, cfgs []pipeline.StageConfig) pipeCell
	adaptive func(e *sweepEnv) pipeCell
	// traced re-runs the plan with a trace sink attached (stage slot
	// lifecycle, pipe depth counters, backpressure instants); nil for plans
	// whose cells rebuild non-reusable state.
	traced func(e *sweepEnv, cfgs []pipeline.StageConfig, tr *obs.CoreTrace) pipeCell
	// serving runs the plan under open-loop arrivals and returns the merged
	// end-to-end latency recorder (nil for plans without a serving variant).
	serving func(e *sweepEnv, arrivals []uint64, qcap int, policy serve.Policy, cfgs []pipeline.StageConfig) *serve.Recorder
}

// pipeRel builds a deterministic relation from per-row key/payload functions.
func pipeRel(name string, n int, key, payload func(i int) uint64) *relation.Relation {
	t := make([]relation.Tuple, n)
	for i := range t {
		t[i] = relation.Tuple{Key: key(i), Payload: payload(i)}
	}
	return &relation.Relation{Name: name, Tuples: t}
}

// pipeCore builds a fresh measured core (private socket, cold caches — the
// same state for every column of a row).
func pipeCore(machine memsim.Config) *memsim.Core {
	return memsim.MustSystem(machine).NewCore()
}

// pipePlans builds the three pipeN plan definitions. The relations are
// generated once here and captured by the closures (immutable, safe to share
// across sweep workers); arena-backed materializations happen per worker
// through the workloadSet.
func pipePlans(machine memsim.Config, ps pipeSizes, seed uint64, acfg adapt.Config) []pipePlan {
	llc := machine.L3.SizeBytes

	// newBuilder applies the CLI pump-geometry overrides; PipeCap must land
	// before the first Build, so the override lives here at construction.
	newBuilder := func(a *arena.Arena) *pipeline.Builder {
		b := pipeline.NewBuilder(a)
		if ps.burst > 0 {
			b.Burst(ps.burst)
		}
		if ps.pipeCap > 0 {
			b.PipeCap(ps.pipeCap)
		}
		return b
	}

	// Plan 1 — build→probe→aggregate: a charged hash build prelude, a scan
	// probe over the built table (half-matching keys) and a group-by sink.
	// The prelude mutates the table, so every cell materializes a fresh
	// arena; fresh arenas share a base address, so cycle counts stay
	// comparable and deterministic.
	aggBuild := pipeRel("R", ps.build,
		func(i int) uint64 { return uint64(i) + 1 },
		func(i int) uint64 { return uint64(i) % uint64(ps.groups) })
	aggProbe := pipeRel("S", ps.rows,
		func(i int) uint64 { return (uint64(i)*2654435761+seed)%uint64(2*ps.build) + 1 },
		func(i int) uint64 { return uint64(i) })
	freshAgg := func(prelude bool) *pipeline.Builder {
		a := arena.New()
		table := ht.New(a, ps.build/ops.TuplesPerBucket)
		agg := ht.NewAgg(a, ps.groups)
		bin := ops.NewInput(a, aggBuild)
		pin := ops.NewInput(a, aggProbe)
		b := newBuilder(a)
		if prelude {
			b.PreludeBuild(table, bin)
		} else {
			// The planner never runs preludes: its twin probes a pre-built
			// table with the exact content the prelude would produce.
			for _, t := range aggBuild.Tuples {
				table.InsertRaw(t.Key, t.Payload)
			}
		}
		b.ScanProbe(table, pin, true)
		b.Aggregate(agg, pipeline.SelBuildPayload)
		return b
	}
	aggKey := pipeKey{kind: "agg-twin", rows: ps.rows, build: ps.build, groups: ps.groups, sample: ps.sample, burst: ps.burst, pipeCap: ps.pipeCap, seed: seed, llc: llc}
	aggTwin := func(e *sweepEnv) *pipeWorkload {
		return e.wl.pipeWorkload(aggKey, func() *pipeWorkload {
			b := freshAgg(false)
			return &pipeWorkload{b: b, rows: aggProbe.Len(), choice: b.Plan(machine, ps.sample, adapt.Config{})}
		})
	}

	// Plan 2 — probe→BST filter (steady): the root probes a DRAM-resident
	// table (every key matches, so the filter sees the full row stream) and
	// the filter walks a BST. Both stages are long pointer chases with
	// memory-level parallelism to mine, so they agree on the engine — the
	// planner's job here is to not lose to the exhaustive sweep. This is
	// also the served plan of the pipeN-serve table.
	bstProbe := pipeRel("S", ps.rows,
		func(i int) uint64 { return (uint64(i)*2654435761+seed)%uint64(ps.build) + 1 },
		func(i int) uint64 { return uint64(i) })
	bstKey := pipeKey{kind: "bst", rows: ps.rows, build: ps.build, aux: ps.bst, sample: ps.sample, burst: ps.burst, pipeCap: ps.pipeCap, seed: seed, llc: llc}
	bstWL := func(e *sweepEnv) *pipeWorkload {
		return e.wl.pipeWorkload(bstKey, func() *pipeWorkload {
			a := arena.New()
			table := ht.New(a, ps.build/ops.TuplesPerBucket)
			for k := uint64(1); k <= uint64(ps.build); k++ {
				// Build payloads land in the tree's key domain about half the
				// time, so the filter actually filters.
				table.InsertRaw(k, (k*7919)%uint64(2*ps.bst)+1)
			}
			tree := bst.New(a)
			for i := 0; i < ps.bst; i++ {
				k := (uint64(i)*2654435761)%uint64(2*ps.bst) + 1
				tree.Insert(k, k+13)
			}
			pin := ops.NewInput(a, bstProbe)
			out := ops.NewOutput(a, false)
			b := newBuilder(a)
			b.ScanProbe(table, pin, true)
			b.BSTFilter(tree, pipeline.SelBuildPayload)
			return &pipeWorkload{b: b, out: out, rows: bstProbe.Len(), choice: b.Plan(machine, ps.sample, adapt.Config{})}
		})
	}

	// Plan 3 — 3-way join chain, the mixed plan: a DRAM-resident root join,
	// a small cache-resident dimension join in the middle (probing on the
	// root's matched payload), and a DRAM-resident tail join on a second,
	// independently diverse attribute of the original row (the carried
	// probe-side payload). The middle stage is a short warm probe — the
	// regime where the baseline loop's lean bookkeeping wins — while the
	// outer stages are cold pointer chases that want memory-level
	// parallelism, so no uniform assignment is right for all three stages.
	n := uint64(ps.build)
	dim := uint64(ps.dim)
	chainProbe := pipeRel("S", ps.rows,
		func(i int) uint64 { return (uint64(i)*2654435761+seed)%n + 1 },
		func(i int) uint64 { return (uint64(i)*2246822519+seed)%n + 1 })
	chainKey := pipeKey{kind: "chain", rows: ps.rows, build: ps.build, aux: ps.dim, sample: ps.sample, burst: ps.burst, pipeCap: ps.pipeCap, seed: seed, llc: llc}
	chainWL := func(e *sweepEnv) *pipeWorkload {
		return e.wl.pipeWorkload(chainKey, func() *pipeWorkload {
			a := arena.New()
			mk := func(size int, pay func(k uint64) uint64) *ht.Table {
				t := ht.New(a, size/ops.TuplesPerBucket)
				for k := uint64(1); k <= uint64(size); k++ {
					t.InsertRaw(k, pay(k))
				}
				return t
			}
			t1 := mk(ps.build, func(k uint64) uint64 { return (k*7)%dim + 1 })
			t2 := mk(ps.dim, func(k uint64) uint64 { return (k*2654435761)%n + 1 })
			t3 := mk(ps.build, func(k uint64) uint64 { return k * 1000 })
			pin := ops.NewInput(a, chainProbe)
			out := ops.NewOutput(a, false)
			b := newBuilder(a)
			b.ScanProbe(t1, pin, true)
			b.Probe(t2, pipeline.SelBuildPayload, true)
			b.Probe(t3, pipeline.SelProbePayload, true)
			return &pipeWorkload{b: b, out: out, rows: chainProbe.Len(), choice: b.Plan(machine, ps.sample, adapt.Config{})}
		})
	}

	newCtls := func(c *memsim.Core, stages int) []*adapt.Controller {
		ctls := make([]*adapt.Controller, stages)
		for i := range ctls {
			ctls[i] = adapt.NewControllerFor(c, acfg)
		}
		return ctls
	}

	// runCachedTraced runs one measured cell of a read-only cached workload,
	// with an optional trace sink on the assembled pipeline.
	runCachedTraced := func(wl func(e *sweepEnv) *pipeWorkload) func(e *sweepEnv, cfgs []pipeline.StageConfig, tr *obs.CoreTrace) pipeCell {
		return func(e *sweepEnv, cfgs []pipeline.StageConfig, tr *obs.CoreTrace) pipeCell {
			w := wl(e)
			w.out.Reset()
			c := pipeCore(machine)
			p := w.b.Build(w.out)
			p.SetTrace(tr)
			p.Run(c, cfgs)
			return pipeCell{cycles: c.Cycle(), rows: w.rows}
		}
	}
	runCached := func(wl func(e *sweepEnv) *pipeWorkload) func(e *sweepEnv, cfgs []pipeline.StageConfig) pipeCell {
		rt := runCachedTraced(wl)
		return func(e *sweepEnv, cfgs []pipeline.StageConfig) pipeCell { return rt(e, cfgs, nil) }
	}
	adaptCached := func(wl func(e *sweepEnv) *pipeWorkload, stages int) func(e *sweepEnv) pipeCell {
		return func(e *sweepEnv) pipeCell {
			w := wl(e)
			w.out.Reset()
			c := pipeCore(machine)
			w.b.Build(w.out).RunAdaptive(c, newCtls(c, stages))
			return pipeCell{cycles: c.Cycle(), rows: w.rows}
		}
	}
	serveCached := func(wl func(e *sweepEnv) *pipeWorkload) func(e *sweepEnv, arrivals []uint64, qcap int, policy serve.Policy, cfgs []pipeline.StageConfig) *serve.Recorder {
		return func(e *sweepEnv, arrivals []uint64, qcap int, policy serve.Policy, cfgs []pipeline.StageConfig) *serve.Recorder {
			w := wl(e)
			w.out.Reset()
			var lat serve.Recorder
			p := w.b.BuildServing(pipeline.ServingSpec{
				Arrivals: arrivals,
				QueueCap: qcap,
				Policy:   policy,
				Out:      w.out,
				Latency:  &lat,
			})
			p.Run(pipeCore(machine), cfgs)
			return &lat
		}
	}

	return []pipePlan{
		{
			name:   pipeAggPlan,
			stages: 2,
			choice: func(e *sweepEnv) pipeline.PlanChoice { return aggTwin(e).choice },
			run: func(e *sweepEnv, cfgs []pipeline.StageConfig) pipeCell {
				c := pipeCore(machine)
				freshAgg(true).Build(nil).Run(c, cfgs)
				return pipeCell{cycles: c.Cycle(), rows: aggProbe.Len()}
			},
			adaptive: func(e *sweepEnv) pipeCell {
				c := pipeCore(machine)
				freshAgg(true).Build(nil).RunAdaptive(c, newCtls(c, 2))
				return pipeCell{cycles: c.Cycle(), rows: aggProbe.Len()}
			},
		},
		{
			name:     pipeBSTPlan,
			stages:   2,
			choice:   func(e *sweepEnv) pipeline.PlanChoice { return bstWL(e).choice },
			run:      runCached(bstWL),
			adaptive: adaptCached(bstWL, 2),
			serving:  serveCached(bstWL),
			traced:   runCachedTraced(bstWL),
		},
		{
			name:     pipeChainPlan,
			stages:   3,
			mixed:    true,
			choice:   func(e *sweepEnv) pipeline.PlanChoice { return chainWL(e).choice },
			run:      runCached(chainWL),
			adaptive: adaptCached(chainWL, 3),
			traced:   runCachedTraced(chainWL),
		},
	}
}

// pipeCombos enumerates every per-stage technique assignment at the given
// window — the exhaustive static sweep the planner is judged against.
func pipeCombos(stages, window int) [][]pipeline.StageConfig {
	total := 1
	for s := 0; s < stages; s++ {
		total *= len(ops.Techniques)
	}
	combos := make([][]pipeline.StageConfig, total)
	for i := range combos {
		cfgs := make([]pipeline.StageConfig, stages)
		x := i
		for s := 0; s < stages; s++ {
			cfgs[s] = pipeline.StageConfig{Tech: ops.Techniques[x%len(ops.Techniques)], Window: window}
			x /= len(ops.Techniques)
		}
		combos[i] = cfgs
	}
	return combos
}

// pipeComboLabel renders "tech→tech→tech".
func pipeComboLabel(cfgs []pipeline.StageConfig) string {
	parts := make([]string, len(cfgs))
	for i, c := range cfgs {
		parts[i] = c.Tech.String()
	}
	return strings.Join(parts, "→")
}

// uniformTech returns the technique if every stage uses it (ok=false for a
// genuinely mixed assignment).
func uniformTech(cfgs []pipeline.StageConfig) (ops.Technique, bool) {
	for _, c := range cfgs[1:] {
		if c.Tech != cfgs[0].Tech {
			return 0, false
		}
	}
	return cfgs[0].Tech, true
}

const (
	pipeBestCol    = "Best static"
	pipePlannerCol = "Planner"
)

// pipeServeLoads are the offered loads of the pipeN serving table, as
// fractions of the mixed plan's measured uniform-AMAC batch capacity.
var pipeServeLoads = []float64{0.6, 0.9}

// pipeN measures the streaming pipeline layer end to end on three
// multi-operator plans: a charged build→probe→aggregate, a probe feeding a
// BST filter, and a 3-way join chain whose middle stage is a cache-resident
// dimension join (the mixed-regime plan).
// Every plan runs under every static per-stage technique assignment
// (exhaustively — 4^stages combinations), under the cost-seeded
// mini-planner's assignment, and under fully adaptive per-stage controllers.
// The main table reports cycles per root row; uniform assignments get their
// own columns, the best exhaustive assignment and the planner close the
// comparison. The acceptance shape — planner within 5% of the best static
// assignment on the steady plans and ahead of every uniform assignment on
// the mixed plan — is asserted by the shape tests on a scaled hierarchy.
//
// The companion pipeN-plan table reports what planning cost and how close it
// landed; pipeN-serve serves the mixed plan through its admission queue at a
// load sweep and reports end-to-end (arrival→sink) p99 latency per
// assignment. All cells are independent and fan out over -parallel sweep
// workers bit-identically.
func pipeN(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	ps := pipeSizes{rows: sz.pipeRows, build: sz.pipeBuild, dim: sz.pipeDim, bst: sz.pipeBST, groups: sz.pipeGroups, sample: sz.pipeSample,
		burst: cfg.Burst, pipeCap: cfg.PipeCap}
	machine := memsim.XeonX5670()
	plans := pipePlans(machine, ps, cfg.seed(), adaptConfig(sz))
	// The -plans filter was validated at the CLI boundary; an invalid filter
	// reaching this far is a programming error, so it just runs everything.
	if sel, err := selectPipePlans(cfg.Plans); err == nil && sel != nil {
		kept := plans[:0]
		for _, p := range plans {
			if sel[p.name] {
				kept = append(kept, p)
			}
		}
		plans = kept
	}
	window := cfg.window()

	rows := make([]string, len(plans))
	for i, p := range plans {
		rows[i] = p.name
	}
	cols := append(append([]string(nil), techColumns...), pipeBestCol, pipePlannerCol, adaptiveCol)
	main := profile.New("pipeN", "Streaming pipelines: per-stage assignment versus plan cost (Xeon)", "cycles/row", rows, cols)
	main.AddNote("uniform columns assign one technique to every stage; %q is the best of all 4^stages per-stage assignments; the planner's per-stage choice comes from a %d-row cost-seeded sample", pipeBestCol, ps.sample)
	main.AddNote("|S| = 2^%d root rows, build tables 2^%d, mixed-plan dimension table 2^%d keys (cache-resident), BST 2^%d keys, scale %q, seed %d",
		log2(ps.rows), log2(ps.build), log2(ps.dim), log2(ps.bst), cfg.scale(), cfg.seed())

	planCols := []string{"stages", "sample rows", "plan Mcycles", "planner ÷ best static", "best uniform ÷ planner"}
	planTab := profile.New("pipeN-plan", "Mini-planner choice quality and cost per plan", "", rows, planCols)
	planTab.AddNote("planner ÷ best static near 1.0 means the sampled choice matches the exhaustive sweep; best uniform ÷ planner above 1.0 means the planner beats every uniform assignment")

	// Enumerate the sweep cells: every static combination, the planner's
	// assignment, and the adaptive run, for every plan.
	type cellID struct {
		plan  int
		combo int // index into combos; -1 planner, -2 adaptive
	}
	var (
		cells  []cellID
		tasks  []func(*sweepEnv) pipeCell
		combos = make([][][]pipeline.StageConfig, len(plans))
	)
	for pi, p := range plans {
		pi, p := pi, p
		combos[pi] = pipeCombos(p.stages, window)
		for ci, cc := range combos[pi] {
			ci, cc := ci, cc
			cells = append(cells, cellID{pi, ci})
			tasks = append(tasks, func(e *sweepEnv) pipeCell { return p.run(e, cc) })
		}
		cells = append(cells, cellID{pi, -1})
		tasks = append(tasks, func(e *sweepEnv) pipeCell { return p.run(e, p.choice(e).Configs) })
		cells = append(cells, cellID{pi, -2})
		tasks = append(tasks, func(e *sweepEnv) pipeCell { return p.adaptive(e) })
	}

	results := runSweep(cfg, tasks)

	perPlanStatic := make([][]float64, len(plans))
	for i := range perPlanStatic {
		perPlanStatic[i] = make([]float64, len(combos[i]))
	}
	planner := make([]float64, len(plans))
	adaptive := make([]float64, len(plans))
	for i, res := range results {
		id := cells[i]
		switch {
		case id.combo == -1:
			planner[id.plan] = res.cyclesPerRow()
		case id.combo == -2:
			adaptive[id.plan] = res.cyclesPerRow()
		default:
			perPlanStatic[id.plan][id.combo] = res.cyclesPerRow()
		}
	}

	for pi, p := range plans {
		best, bestIdx := 0.0, 0
		bestUniform := 0.0
		for ci, v := range perPlanStatic[pi] {
			if ci == 0 || v < best {
				best, bestIdx = v, ci
			}
			if tech, ok := uniformTech(combos[pi][ci]); ok {
				main.Set(p.name, tech.String(), v)
				if bestUniform == 0 || v < bestUniform {
					bestUniform = v
				}
			}
		}
		main.Set(p.name, pipeBestCol, best)
		main.Set(p.name, pipePlannerCol, planner[pi])
		main.Set(p.name, adaptiveCol, adaptive[pi])
		main.AddNote("%s: best static is %s; planner chose %s", p.name, pipeComboLabel(combos[pi][bestIdx]), defaultEnv.planChoiceLabel(p))

		planTab.Set(p.name, "stages", float64(p.stages))
		planTab.Set(p.name, "sample rows", float64(defaultEnv.planChoice(p).SampleRows))
		planTab.Set(p.name, "plan Mcycles", float64(defaultEnv.planChoice(p).PlanCycles)/1e6)
		planTab.Set(p.name, "planner ÷ best static", planner[pi]/best)
		planTab.Set(p.name, "best uniform ÷ planner", bestUniform/planner[pi])
	}

	if ps.burst > 0 || ps.pipeCap > 0 {
		main.AddNote("pump geometry overridden: -burst %d, -pipecap %d (zero = pipeline default)", ps.burst, ps.pipeCap)
	}
	tables := []*profile.Table{main, planTab}
	if st := pipeServeTable(cfg, machine, plans); st != nil {
		tables = append(tables, st)
	}

	// The designated trace cell: one extra run of the mixed plan (or the last
	// traced plan a -plans filter kept) under the planner's assignment, with
	// the trace sink attached. Re-running after the sweep keeps every table
	// byte-identical with or without tracing, and running it serially on
	// defaultEnv keeps the exported trace deterministic under -parallel.
	if cfg.Trace != nil {
		var tp *pipePlan
		for i := range plans {
			if plans[i].traced == nil {
				continue
			}
			if tp == nil || plans[i].mixed {
				tp = &plans[i]
			}
		}
		if tp != nil {
			tp.traced(defaultEnv, defaultEnv.planChoice(*tp).Configs, cfg.Trace.Core("pipeline"))
		}
	}
	return tables
}

// planChoice reads a plan's cached mini-planner choice through this
// environment's workload set (materializing on first use).
func (e *sweepEnv) planChoice(p pipePlan) pipeline.PlanChoice { return p.choice(e) }

// planChoiceLabel renders a plan's choice for table notes.
func (e *sweepEnv) planChoiceLabel(p pipePlan) string {
	cfgs := e.planChoice(p).Configs
	parts := make([]string, len(cfgs))
	for i, c := range cfgs {
		parts[i] = c.String()
	}
	return strings.Join(parts, "→")
}

// pipeServeTable serves the probe→BST filter plan through its admission
// queue: Poisson (or -arrivals) open-loop arrivals at fractions of the plan's
// uniform-AMAC batch capacity, one run per static uniform assignment plus the
// planner's, reporting end-to-end (arrival→sink completion) p99 latency. It
// returns nil when a -plans filter excluded every served plan.
func pipeServeTable(cfg Config, machine memsim.Config, plans []pipePlan) *profile.Table {
	var served pipePlan
	for _, p := range plans {
		if p.serving != nil {
			served = p
		}
	}
	if served.serving == nil {
		return nil
	}
	window := cfg.window()
	policy := queuePolicy(cfg)

	// Calibrate the load axis serially against uniform AMAC batch cycles on
	// this plan — every sweep worker then derives the same schedules.
	amacCfgs := make([]pipeline.StageConfig, served.stages)
	for i := range amacCfgs {
		amacCfgs[i] = pipeline.StageConfig{Tech: ops.AMAC, Window: window}
	}
	batch := served.run(defaultEnv, amacCfgs)
	capacity := float64(batch.rows) / float64(batch.cycles) // req/cycle

	rows := make([]string, len(pipeServeLoads))
	for i, l := range pipeServeLoads {
		rows[i] = loadLabel(l)
	}
	cols := append(append([]string(nil), techColumns...), pipePlannerCol)
	t := profile.New("pipeN-serve", "Served pipeline: end-to-end p99 latency per assignment (Xeon)", "kcycles", rows, cols)
	t.AddNote("plan %q; rows: offered load as a fraction of uniform AMAC's batch capacity (%.4f req/cycle); %s arrivals, %s queue; latency spans admission through sink completion",
		served.name, capacity, arrivalsName(cfg), policyLabel(policy, cfg.QueueCap))

	type cell struct {
		load float64
		col  string
	}
	var cells []cell
	var tasks []func(*sweepEnv) *serve.Recorder
	for _, load := range pipeServeLoads {
		period := 1 / (load * capacity)
		for _, tech := range ops.Techniques {
			load, tech := load, tech
			cfgs := make([]pipeline.StageConfig, served.stages)
			for i := range cfgs {
				cfgs[i] = pipeline.StageConfig{Tech: tech, Window: window}
			}
			cells = append(cells, cell{load, tech.String()})
			tasks = append(tasks, func(e *sweepEnv) *serve.Recorder {
				arr := cachedArrivalSchedule(arrivalsName(cfg), period, batch.rows, cfg.seed()+1)
				return served.serving(e, arr, cfg.QueueCap, policy, cfgs)
			})
		}
		load := load
		cells = append(cells, cell{load, pipePlannerCol})
		tasks = append(tasks, func(e *sweepEnv) *serve.Recorder {
			arr := cachedArrivalSchedule(arrivalsName(cfg), period, batch.rows, cfg.seed()+1)
			return served.serving(e, arr, cfg.QueueCap, policy, e.planChoice(served).Configs)
		})
	}
	for i, rec := range runSweep(cfg, tasks) {
		t.Set(loadLabel(cells[i].load), cells[i].col, float64(rec.P99())/1000)
	}
	return t
}

package experiments

import (
	"fmt"
	"sync"

	"amac/internal/ops"
	"amac/internal/relation"
)

// Workload construction is seed-deterministic: a spec always generates the
// same relations, and materializing a probe-only workload performs the same
// arena allocation sequence, so the resulting address-space image — table
// layout, input arrays, output buffer address — is byte-identical every
// time. The sweeps exploit that: instead of regenerating the workload at
// every sweep point (figure 6 alone would otherwise build the same join 32
// times), each distinct workload is built once per process and reused, which
// is what makes paper-scale sweeps (10^6–10^8 tuples) tractable.
//
// Only workloads the measured phase treats as read-only are cached whole
// (probe-only joins, BST search, pre-built skip list search); phases that
// mutate their structure (hash build, group-by, skip list insert) cache just
// the generated relations and re-materialize fresh. Either way a run
// observes exactly the state a fresh construction would have produced, so
// simulated results are bit-identical to the uncached path — the golden
// cycle-count tests enforce this.

// fifoCache is a small insertion-ordered cache: sweeps revisit a handful of
// specs, and the cap keeps a long `-exp all` session from pinning every
// workload it ever built.
type fifoCache[K comparable, V any] struct {
	entries map[K]V
	order   []K
	cap     int
}

func newFIFOCache[K comparable, V any](cap int) *fifoCache[K, V] {
	return &fifoCache[K, V]{entries: make(map[K]V), cap: cap}
}

func (c *fifoCache[K, V]) get(k K, build func() V) V {
	if v, ok := c.entries[k]; ok {
		return v
	}
	v := build()
	if len(c.order) >= c.cap {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[k] = v
	c.order = append(c.order, k)
	return v
}

type relPair struct{ build, probe *relation.Relation }

type joinKey struct {
	spec    relation.JoinSpec
	buckets int
}

type indexKey struct {
	n    int
	seed uint64
}

// probeJoin is a materialized probe-only join plus the output collector that
// was allocated right after it, preserving the fresh-construction layout.
type probeJoin struct {
	j   *ops.HashJoin
	out *ops.Output
}

// indexWorkload is a materialized read-only index-search workload (BST or
// pre-built skip list) plus its output collector.
type indexWorkload[W any] struct {
	w   W
	out *ops.Output
}

var workloads = struct {
	mu     sync.Mutex
	joins  *fifoCache[relation.JoinSpec, relPair]
	probes *fifoCache[joinKey, probeJoin]
	groups *fifoCache[relation.GroupBySpec, *relation.Relation]
	index  *fifoCache[indexKey, relPair]
	bsts   *fifoCache[indexKey, indexWorkload[*ops.BSTWorkload]]
	skips  *fifoCache[indexKey, indexWorkload[*ops.SkipListWorkload]]
}{
	joins:  newFIFOCache[relation.JoinSpec, relPair](16),
	probes: newFIFOCache[joinKey, probeJoin](8),
	groups: newFIFOCache[relation.GroupBySpec, *relation.Relation](8),
	index:  newFIFOCache[indexKey, relPair](8),
	bsts:   newFIFOCache[indexKey, indexWorkload[*ops.BSTWorkload]](4),
	skips:  newFIFOCache[indexKey, indexWorkload[*ops.SkipListWorkload]](4),
}

// cachedJoinRelations returns the generated (immutable) relations for spec.
func cachedJoinRelations(spec relation.JoinSpec) (build, probe *relation.Relation) {
	workloads.mu.Lock()
	defer workloads.mu.Unlock()
	p := workloads.joins.get(spec, func() relPair {
		b, pr, err := relation.BuildJoin(spec)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return relPair{b, pr}
	})
	return p.build, p.probe
}

// cachedProbeJoin returns a materialized probe-only join (table pre-built
// raw) and its output collector, reset for a fresh measured run. The probe
// machines never mutate the table or inputs, so reuse is read-only.
func cachedProbeJoin(spec relation.JoinSpec, buckets int) (*ops.HashJoin, *ops.Output) {
	build, probe := cachedJoinRelations(spec)
	workloads.mu.Lock()
	defer workloads.mu.Unlock()
	e := workloads.probes.get(joinKey{spec, buckets}, func() probeJoin {
		var j *ops.HashJoin
		if buckets > 0 {
			j = ops.NewHashJoinWithBuckets(build, probe, buckets)
		} else {
			j = ops.NewHashJoin(build, probe)
		}
		j.PrebuildRaw()
		// Allocated after PrebuildRaw, exactly as a fresh run would.
		return probeJoin{j: j, out: ops.NewOutput(j.Arena, false)}
	})
	e.out.Reset()
	return e.j, e.out
}

// cachedGroupByRelation returns the generated group-by input; the table is
// re-materialized per run because aggregation mutates it.
func cachedGroupByRelation(spec relation.GroupBySpec) *relation.Relation {
	workloads.mu.Lock()
	defer workloads.mu.Unlock()
	return workloads.groups.get(spec, func() *relation.Relation {
		rel, err := relation.BuildGroupBy(spec)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return rel
	})
}

// cachedIndexRelations returns the generated index build/probe relations.
func cachedIndexRelations(n int, seed uint64) (build, probe *relation.Relation) {
	workloads.mu.Lock()
	defer workloads.mu.Unlock()
	p := workloads.index.get(indexKey{n, seed}, func() relPair {
		b, pr, err := relation.BuildIndexWorkload(n, seed)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return relPair{b, pr}
	})
	return p.build, p.probe
}

// cachedBSTWorkload returns a materialized tree-search workload; searches
// never mutate the tree.
func cachedBSTWorkload(n int, seed uint64) (*ops.BSTWorkload, *ops.Output) {
	build, probe := cachedIndexRelations(n, seed)
	workloads.mu.Lock()
	defer workloads.mu.Unlock()
	e := workloads.bsts.get(indexKey{n, seed}, func() indexWorkload[*ops.BSTWorkload] {
		w := ops.NewBSTWorkload(build, probe)
		return indexWorkload[*ops.BSTWorkload]{w: w, out: ops.NewOutput(w.Arena, false)}
	})
	e.out.Reset()
	return e.w, e.out
}

// cachedSkipListSearch returns a materialized, pre-built skip list search
// workload; searches never mutate the list.
func cachedSkipListSearch(n int, seed uint64) (*ops.SkipListWorkload, *ops.Output) {
	build, probe := cachedIndexRelations(n, seed)
	workloads.mu.Lock()
	defer workloads.mu.Unlock()
	e := workloads.skips.get(indexKey{n, seed}, func() indexWorkload[*ops.SkipListWorkload] {
		w := ops.NewSkipListWorkload(build, probe)
		w.PrebuildRaw(seed)
		return indexWorkload[*ops.SkipListWorkload]{w: w, out: ops.NewOutput(w.Arena, false)}
	})
	e.out.Reset()
	return e.w, e.out
}

package experiments

import (
	"fmt"
	"sync"

	"amac/internal/ops"
	"amac/internal/relation"
	"amac/internal/serve"
)

// Workload construction is seed-deterministic: a spec always generates the
// same relations, and materializing a probe-only workload performs the same
// arena allocation sequence, so the resulting address-space image — table
// layout, input arrays, output buffer address — is byte-identical every
// time. The sweeps exploit that: instead of regenerating the workload at
// every sweep point (figure 6 alone would otherwise build the same join 32
// times), each distinct workload is built once and reused, which is what
// makes paper-scale sweeps (10^6–10^8 tuples) tractable.
//
// Caching happens at two levels with different sharing rules:
//
//   - Generated relations and arrival schedules are plain Go data that
//     nothing ever mutates, so one process-wide copy serves every sweep
//     worker concurrently. Their caches are per-key sync.Once builds
//     (onceCache): under a parallel sweep the first worker to need a key
//     builds it while the others wait, and after publication access is
//     lock-free read-only.
//   - Materialized arena-backed workloads are NOT shareable across
//     goroutines, not even read-only: every arena access updates its
//     last-touched-chunk memo, and output collectors accumulate into the
//     arena image. They live in a workloadSet, of which each sweep worker
//     owns one (see runSweep). Deterministic construction makes every
//     worker's copy byte-identical in the simulated address space, which is
//     why a parallel sweep reproduces the serial results bit for bit.
//
// Only workloads the measured phase treats as read-only are cached whole
// (probe-only joins, BST search, pre-built skip list search, serving joins);
// phases that mutate their structure (hash build, group-by, skip list
// insert) cache just the generated relations and re-materialize fresh.
// Either way a run observes exactly the state a fresh construction would
// have produced, so simulated results are bit-identical to the uncached
// path — the golden cycle-count tests enforce this.

// fifoCache is a small insertion-ordered cache: sweeps revisit a handful of
// specs, and the cap keeps a long `-exp all` session from pinning every
// workload it ever built.
type fifoCache[K comparable, V any] struct {
	entries map[K]V
	order   []K
	cap     int
}

func newFIFOCache[K comparable, V any](cap int) *fifoCache[K, V] {
	return &fifoCache[K, V]{entries: make(map[K]V), cap: cap}
}

func (c *fifoCache[K, V]) get(k K, build func() V) V {
	if v, ok := c.entries[k]; ok {
		return v
	}
	v := build()
	if len(c.order) >= c.cap {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[k] = v
	c.order = append(c.order, k)
	return v
}

// onceCache is a concurrency-safe cache for immutable values: each key is
// built exactly once (concurrent first requests for the same key block on
// one build) and is read-only after publication. Eviction follows the same
// FIFO rule as fifoCache; a builder holding an evicted entry simply
// completes against garbage-collected state.
type onceCache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*onceEntry[V]
	order   []K
	cap     int
}

type onceEntry[V any] struct {
	once sync.Once
	v    V
}

func newOnceCache[K comparable, V any](cap int) *onceCache[K, V] {
	return &onceCache[K, V]{entries: make(map[K]*onceEntry[V]), cap: cap}
}

func (c *onceCache[K, V]) get(k K, build func() V) V {
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &onceEntry[V]{}
		if len(c.order) >= c.cap {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
		c.entries[k] = e
		c.order = append(c.order, k)
	}
	c.mu.Unlock()
	e.once.Do(func() { e.v = build() })
	return e.v
}

type relPair struct{ build, probe *relation.Relation }

type joinKey struct {
	spec    relation.JoinSpec
	buckets int
}

type indexKey struct {
	n    int
	seed uint64
}

type arrivalKey struct {
	process string
	period  float64
	n       int
	seed    uint64
}

// probeJoin is a materialized probe-only join plus the output collector that
// was allocated right after it, preserving the fresh-construction layout.
type probeJoin struct {
	j   *ops.HashJoin
	out *ops.Output
}

// indexWorkload is a materialized read-only index-search workload (BST or
// pre-built skip list) plus its output collector.
type indexWorkload[W any] struct {
	w   W
	out *ops.Output
}

// shared holds the process-wide caches of immutable, goroutine-safe data:
// generated relations and arrival schedules.
var shared = struct {
	joins    *onceCache[relation.JoinSpec, relPair]
	groups   *onceCache[relation.GroupBySpec, *relation.Relation]
	index    *onceCache[indexKey, relPair]
	arrivals *onceCache[arrivalKey, []uint64]
}{
	joins:    newOnceCache[relation.JoinSpec, relPair](16),
	groups:   newOnceCache[relation.GroupBySpec, *relation.Relation](8),
	index:    newOnceCache[indexKey, relPair](8),
	arrivals: newOnceCache[arrivalKey, []uint64](32),
}

// cachedJoinRelations returns the generated (immutable) relations for spec.
// Safe for concurrent use.
func cachedJoinRelations(spec relation.JoinSpec) (build, probe *relation.Relation) {
	p := shared.joins.get(spec, func() relPair {
		b, pr, err := relation.BuildJoin(spec)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return relPair{b, pr}
	})
	return p.build, p.probe
}

// cachedGroupByRelation returns the generated group-by input; the table is
// re-materialized per run because aggregation mutates it. Safe for
// concurrent use.
func cachedGroupByRelation(spec relation.GroupBySpec) *relation.Relation {
	return shared.groups.get(spec, func() *relation.Relation {
		rel, err := relation.BuildGroupBy(spec)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return rel
	})
}

// cachedIndexRelations returns the generated index build/probe relations.
// Safe for concurrent use.
func cachedIndexRelations(n int, seed uint64) (build, probe *relation.Relation) {
	p := shared.index.get(indexKey{n, seed}, func() relPair {
		b, pr, err := relation.BuildIndexWorkload(n, seed)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return relPair{b, pr}
	})
	return p.build, p.probe
}

// cachedArrivalSchedule returns the arrival schedule of the named process at
// the given mean period, built once per (process, rate, length, seed) so a
// load sweep constructs each open-loop schedule a single time no matter how
// many techniques replay it. The schedule is immutable; safe for concurrent
// use.
func cachedArrivalSchedule(process string, period float64, n int, seed uint64) []uint64 {
	return shared.arrivals.get(arrivalKey{process, period, n, seed}, func() []uint64 {
		proc, err := serve.ParseArrivals(process, period)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return proc.Schedule(n, seed)
	})
}

// workloadSet holds materialized arena-backed workloads. A workloadSet is
// confined to one goroutine at a time — each parallel sweep worker owns a
// private set (see runSweep), and the process-wide defaultWorkloads set
// serves serial execution — because arenas are not safe for concurrent use,
// not even read-only. The mutex only guards against accidental cross-test
// overlap on the default set; it does not make concurrent simulation on one
// set safe.
type workloadSet struct {
	mu     sync.Mutex
	probes *fifoCache[joinKey, probeJoin]
	bsts   *fifoCache[indexKey, indexWorkload[*ops.BSTWorkload]]
	skips  *fifoCache[indexKey, indexWorkload[*ops.SkipListWorkload]]
	serves *fifoCache[servingKey, *servingJoin]
	faults *fifoCache[faultKey, *faultJoin]
	adapts *fifoCache[adaptKey, adaptExec]
	pipes  *fifoCache[pipeKey, *pipeWorkload]
}

func newWorkloadSet() *workloadSet {
	return &workloadSet{
		probes: newFIFOCache[joinKey, probeJoin](8),
		bsts:   newFIFOCache[indexKey, indexWorkload[*ops.BSTWorkload]](4),
		skips:  newFIFOCache[indexKey, indexWorkload[*ops.SkipListWorkload]](4),
		serves: newFIFOCache[servingKey, *servingJoin](2),
		faults: newFIFOCache[faultKey, *faultJoin](1),
		adapts: newFIFOCache[adaptKey, adaptExec](4),
		pipes:  newFIFOCache[pipeKey, *pipeWorkload](4),
	}
}

// defaultWorkloads serves serial execution and sweep worker 0, so a serial
// run and the first parallel worker reuse whatever earlier experiments in
// the same process already built.
var defaultWorkloads = newWorkloadSet()

// probeJoin returns a materialized probe-only join (table pre-built raw) and
// its output collector, reset for a fresh measured run. The probe machines
// never mutate the table or inputs, so reuse within the owning goroutine is
// read-only.
func (ws *workloadSet) probeJoin(spec relation.JoinSpec, buckets int) (*ops.HashJoin, *ops.Output) {
	build, probe := cachedJoinRelations(spec)
	ws.mu.Lock()
	defer ws.mu.Unlock()
	e := ws.probes.get(joinKey{spec, buckets}, func() probeJoin {
		var j *ops.HashJoin
		if buckets > 0 {
			j = ops.NewHashJoinWithBuckets(build, probe, buckets)
		} else {
			j = ops.NewHashJoin(build, probe)
		}
		j.PrebuildRaw()
		// Allocated after PrebuildRaw, exactly as a fresh run would.
		return probeJoin{j: j, out: ops.NewOutput(j.Arena, false)}
	})
	e.out.Reset()
	return e.j, e.out
}

// bstWorkload returns a materialized tree-search workload; searches never
// mutate the tree.
func (ws *workloadSet) bstWorkload(n int, seed uint64) (*ops.BSTWorkload, *ops.Output) {
	build, probe := cachedIndexRelations(n, seed)
	ws.mu.Lock()
	defer ws.mu.Unlock()
	e := ws.bsts.get(indexKey{n, seed}, func() indexWorkload[*ops.BSTWorkload] {
		w := ops.NewBSTWorkload(build, probe)
		return indexWorkload[*ops.BSTWorkload]{w: w, out: ops.NewOutput(w.Arena, false)}
	})
	e.out.Reset()
	return e.w, e.out
}

// skipListSearch returns a materialized, pre-built skip list search
// workload; searches never mutate the list.
func (ws *workloadSet) skipListSearch(n int, seed uint64) (*ops.SkipListWorkload, *ops.Output) {
	build, probe := cachedIndexRelations(n, seed)
	ws.mu.Lock()
	defer ws.mu.Unlock()
	e := ws.skips.get(indexKey{n, seed}, func() indexWorkload[*ops.SkipListWorkload] {
		w := ops.NewSkipListWorkload(build, probe)
		w.PrebuildRaw(seed)
		return indexWorkload[*ops.SkipListWorkload]{w: w, out: ops.NewOutput(w.Arena, false)}
	})
	e.out.Reset()
	return e.w, e.out
}

// cachedProbeJoin, cachedBSTWorkload and cachedSkipListSearch are the
// serial-path entry points over the default set, used by code that runs
// outside a sweep (the benchmark suite, tests).
func cachedProbeJoin(spec relation.JoinSpec, buckets int) (*ops.HashJoin, *ops.Output) {
	return defaultWorkloads.probeJoin(spec, buckets)
}

func cachedBSTWorkload(n int, seed uint64) (*ops.BSTWorkload, *ops.Output) {
	return defaultWorkloads.bstWorkload(n, seed)
}

func cachedSkipListSearch(n int, seed uint64) (*ops.SkipListWorkload, *ops.Output) {
	return defaultWorkloads.skipListSearch(n, seed)
}

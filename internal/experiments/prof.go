package experiments

import (
	"fmt"

	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/prof"
	"amac/internal/profile"
	"amac/internal/relation"
	"amac/internal/serve"
)

func init() {
	register(Descriptor{
		ID:    "profN",
		Title: "Cycle attribution: where every simulated cycle goes, per technique, batch and serving",
		Run:   profN,
	})
}

// profN accounts for every simulated cycle of the paper's decisive workload.
// The batch phase runs the skewed hash-join probe (the fig5b [1, 0]
// configuration) once per technique with the cycle-attribution profiler
// attached and reports (a) the category breakdown — compute, per-level
// exposed stall, TLB, MSHR pressure, idle — as percentages that sum to 100,
// and (b) the DRAM stall accounting: how much off-chip fill latency each
// technique kept off the critical path versus waited out, and the achieved
// MLP that implies. The serving phase replays the serveN comparison that
// motivates the "admit" frame: GP versus AMAC at 60% of AMAC's batch
// capacity, where GP's batch-boundary bubbles show up as idle charged under
// GP;admit while AMAC's residual idle is genuine queue emptiness.
//
// The experiment is a single serial cell (like obsN) and always profiles
// internally — cfg.Profile only adds the export sink — so its tables are
// byte-identical with or without -profile/-flame, serial or -parallel.
// Attribution totals are reconciled against the core's cycle counter per
// run; a mismatch is an invariant violation and panics.
func profN(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	n := sz.joinLarge
	machine := memsim.XeonX5670()
	window := cfg.window()
	seed := cfg.seed()

	pr := cfg.Profile
	if pr == nil {
		pr = prof.NewProfile()
	}

	// Private partitioned workload: profN is serial, but it must not disturb
	// the shared per-sweep workload images other experiments reuse.
	spec := relation.JoinSpec{BuildSize: n, ProbeSize: n, ZipfBuild: 1.0, Seed: seed}
	pj := newParallelJoin(spec, 1)
	out := ops.NewOutput(pj.Parts[0].Arena, false)
	out.Sequential = true

	catRows := make([]string, prof.NumCats)
	for i, c := range prof.Cats {
		catRows[i] = c.String()
	}
	cats := profile.New("profN", "Cycle attribution by category, batch skewed-join probe (Xeon, % of core cycles)", "%", catRows, techColumns)
	stall := profile.New("profN-stall", "DRAM stall accounting and achieved MLP, batch skewed-join probe (Xeon)", "", techColumns,
		[]string{"exposed c/t", "hidden c/t", "hidden frac", "MLP"})

	breakdowns := make(map[ops.Technique]prof.Breakdown, len(ops.Techniques))
	var amacCycles uint64
	for _, tech := range ops.Techniques {
		sys := memsim.MustSystem(machine.ShareLLC(1))
		core := sys.NewCore()
		sys.SetActiveThreads(1, core)
		warmTable(core, pj.Parts[0])
		core.ResetStats()
		cp := pr.Core(tech.String())
		core.SetProfiler(cp)
		out.Reset()
		pm := pj.ProbeMachine(0, out, true)
		ops.RunMachine(core, pm, tech, ops.Params{Window: window})
		core.SetProfiler(nil)

		b := cp.Breakdown()
		cycles := core.Stats().Cycles
		if got := b.Total(); got != cycles {
			panic(fmt.Sprintf("profN: %v attribution does not conserve: %d attributed vs %d core cycles", tech, got, cycles))
		}
		breakdowns[tech] = b
		if tech == ops.AMAC {
			amacCycles = cycles
		}

		tuples := float64(pm.NumLookups())
		for _, c := range prof.Cats {
			cats.Set(c.String(), tech.String(), 100*float64(b.Cats[c])/float64(cycles))
		}
		stall.Set(tech.String(), "exposed c/t", float64(b.Cats[prof.CatDRAM])/tuples)
		stall.Set(tech.String(), "hidden c/t", float64(b.Hidden[prof.CatDRAM])/tuples)
		stall.Set(tech.String(), "hidden frac", b.HiddenFraction(prof.CatDRAM))
		stall.Set(tech.String(), "MLP", b.AchievedMLP())
	}

	cats.AddNote("columns sum to 100%%: every core cycle is charged to exactly one category, and the per-technique totals reconcile exactly with the core's cycle counter (the profiler's conservation invariant)")
	cats.AddNote("|R| = |S| = 2^%d, Zipf(1.0) build keys, early-exit probe, window %d, scale %q, seed %d",
		log2(n), window, cfg.scale(), seed)
	bl, am := breakdowns[ops.Baseline], breakdowns[ops.AMAC]
	stall.AddNote("hidden frac = hidden/(hidden+exposed) DRAM fill latency; MLP = off-chip fill occupancy over exposed memory stall (DRAM + MSHR-full)")
	stall.AddNote("AMAC at width %d hides %.0f%% of its DRAM fill latency where the Baseline hides %.0f%%, at %.1fx the Baseline's achieved MLP",
		window, 100*am.HiddenFraction(prof.CatDRAM), 100*bl.HiddenFraction(prof.CatDRAM), mlpRatio(am, bl))

	// Serving phase: GP vs AMAC at 60% of AMAC's measured batch capacity —
	// low enough that GP's idle is admission bubbles, not saturation.
	serveTechs := []ops.Technique{ops.GP, ops.AMAC}
	serveCols := []string{"idle %", "admit idle %", "DRAM %"}
	srv := profile.New("profN-serve", "Serving-phase idle attribution, GP vs AMAC at 60% load (Xeon, 1 worker)", "", techNames(serveTechs), serveCols)
	tuples := pj.Parts[0].Probe.Len()
	capacity := float64(tuples) / float64(amacCycles)
	period := 1 / (0.6 * capacity)
	arrivals := cachedArrivalSchedule("deterministic", period, tuples, seed+1)
	for _, tech := range serveTechs {
		sp := prof.NewProfile()
		out.Reset()
		serve.Run(serve.Options{
			Hardware:  machine,
			Technique: tech,
			Window:    window,
			Prepare:   func(w int, c *memsim.Core) { warmTable(c, pj.Parts[0]) },
			Profile:   sp,
		}, []serve.Worker[ops.ProbeState]{{
			Machine:  pj.ProbeMachine(0, out, true),
			Arrivals: arrivals,
		}})
		cp := sp.Cores()[0]
		pr.Core("serve " + tech.String()).Merge(cp)
		b := cp.Breakdown()
		total := float64(b.Total())
		srv.Set(tech.String(), "idle %", 100*float64(b.Cats[prof.CatIdle])/total)
		srv.Set(tech.String(), "admit idle %", 100*float64(cp.SumUnder("admit", prof.CatIdle))/total)
		srv.Set(tech.String(), "DRAM %", 100*float64(b.Cats[prof.CatDRAM])/total)
	}
	srv.AddNote("admit idle is idle charged under the engine's admission frame; idle %% == admit idle %% shows a core never idles mid-chain, only while polling an empty queue")
	srv.AddNote("deterministic arrivals at 60%% of AMAC's batch capacity (%.4f req/cycle): AMAC serves them with idle headroom to spare, while GP — its batch-boundary admission exposing the DRAM column's stall on every request — runs saturated at the same offered load", capacity)

	return []*profile.Table{cats, stall, srv}
}

// mlpRatio is AMAC's achieved MLP over the Baseline's, guarded for the
// cache-resident tiny scale where nothing goes off-chip.
func mlpRatio(am, bl prof.Breakdown) float64 {
	if bl.AchievedMLP() == 0 {
		return 0
	}
	return am.AchievedMLP() / bl.AchievedMLP()
}

// techNames renders a technique list as row labels.
func techNames(techs []ops.Technique) []string {
	names := make([]string, len(techs))
	for i, t := range techs {
		names[i] = t.String()
	}
	return names
}

package experiments

// Tests for the sharded multi-core execution layer. They run real goroutines
// (one per worker), so `go test -race` exercises the layer's no-shared-state
// guarantee directly.

import (
	"testing"

	"amac/internal/ops"
	"amac/internal/relation"
)

func parallelShapeCfg(workers int, tech ops.Technique, earlyExit bool) parallelJoinConfig {
	return parallelJoinConfig{
		machine:   scaledXeon(),
		spec:      relation.JoinSpec{BuildSize: shapeJoinSize, ProbeSize: shapeJoinSize, Seed: 99},
		workers:   workers,
		tech:      tech,
		window:    10,
		earlyExit: earlyExit,
	}
}

// TestParallelJoinDeterministic: same seed and worker count ⇒ bit-identical
// merged output and stats, run after run, independent of goroutine
// scheduling.
func TestParallelJoinDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel shape tests take a few seconds")
	}
	first := runParallelJoin(parallelShapeCfg(4, ops.AMAC, true))
	for run := 0; run < 2; run++ {
		again := runParallelJoin(parallelShapeCfg(4, ops.AMAC, true))
		if again.outputCount != first.outputCount || again.outputChecksum != first.outputChecksum {
			t.Fatalf("run %d output differs: (%d, %#x) vs (%d, %#x)",
				run, again.outputCount, again.outputChecksum, first.outputCount, first.outputChecksum)
		}
		if again.merged != first.merged {
			t.Fatalf("run %d merged stats differ:\n  %v\nvs\n  %v", run, again.merged, first.merged)
		}
		for w := range first.perWorker {
			if again.perWorker[w] != first.perWorker[w] {
				t.Fatalf("run %d worker %d stats differ", run, w)
			}
		}
	}
}

// TestParallelJoinOutputIndependentOfWorkerCount: the merged join result
// (match count and order-independent checksum over global row ids) is the
// same for every worker count and equals the partitioned reference join.
func TestParallelJoinOutputIndependentOfWorkerCount(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel shape tests take a few seconds")
	}
	// Unique build keys (uniform join): early-exit output is partition-count
	// invariant.
	base := runParallelJoin(parallelShapeCfg(1, ops.AMAC, true))
	if base.outputCount == 0 {
		t.Fatal("one-worker run produced no output")
	}
	for _, workers := range []int{2, 3, 4} {
		res := runParallelJoin(parallelShapeCfg(workers, ops.AMAC, true))
		if res.outputCount != base.outputCount || res.outputChecksum != base.outputChecksum {
			t.Fatalf("workers=%d output (%d, %#x) differs from one-worker (%d, %#x)",
				workers, res.outputCount, res.outputChecksum, base.outputCount, base.outputChecksum)
		}
		if res.tuples != base.tuples {
			t.Fatalf("workers=%d covers %d tuples, want %d", workers, res.tuples, base.tuples)
		}
	}
	// The same holds across techniques: every engine computes the same join.
	for _, tech := range ops.Techniques {
		res := runParallelJoin(parallelShapeCfg(2, tech, true))
		if res.outputCount != base.outputCount || res.outputChecksum != base.outputChecksum {
			t.Fatalf("%v output (%d, %#x) differs from AMAC (%d, %#x)",
				tech, res.outputCount, res.outputChecksum, base.outputCount, base.outputChecksum)
		}
	}
}

// TestParallelJoinMatchesReferenceAllMatches: without early exit the merged
// output equals the reference join of the unpartitioned workload, for a
// skewed (duplicate-build-key) join.
func TestParallelJoinMatchesReferenceAllMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel shape tests take a few seconds")
	}
	spec := relation.JoinSpec{BuildSize: 1 << 12, ProbeSize: 1 << 13, ZipfBuild: 0.75, Seed: 21}
	build, probe, err := relation.BuildJoin(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum := ops.NewHashJoin(build, probe).ReferenceJoin()
	for _, workers := range []int{1, 3, 4} {
		res := runParallelJoin(parallelJoinConfig{
			machine: scaledXeon(),
			spec:    spec,
			workers: workers,
			tech:    ops.AMAC,
			window:  10,
		})
		if res.outputCount != wantCount || res.outputChecksum != wantSum {
			t.Fatalf("workers=%d output (%d, %#x) differs from reference (%d, %#x)",
				workers, res.outputCount, res.outputChecksum, wantCount, wantSum)
		}
	}
}

// TestShapeParallelThroughputScales: the acceptance shape of the scaleN
// experiment — AMAC's aggregate throughput on the partitioned join must be
// monotonically non-decreasing from one to four workers.
func TestShapeParallelThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel shape tests take a few seconds")
	}
	machine := scaledXeon()
	at := func(workers int) float64 {
		cfg := parallelShapeCfg(workers, ops.AMAC, true)
		return runParallelJoin(cfg).aggregateThroughputMTuplesPerSec(machine.FreqHz)
	}
	t1, t2, t4 := at(1), at(2), at(4)
	if t2 < t1 || t4 < t2 {
		t.Errorf("AMAC aggregate throughput must not decrease from 1 to 4 workers: 1 -> %.1f, 2 -> %.1f, 4 -> %.1f", t1, t2, t4)
	}
	if t4 < 1.5*t1 {
		t.Errorf("four workers (%.1f Mt/s) should be well above one worker (%.1f Mt/s)", t4, t1)
	}
}

package experiments

import (
	"reflect"
	"testing"

	"amac/internal/exec"
	"amac/internal/fault"
	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/relation"
	"amac/internal/serve"
)

// faultDiffSpec is the shared workload of the fault differential tests: a
// tiny replicated serving join with a deterministic schedule.
var faultDiffSpec = relation.JoinSpec{BuildSize: 1 << 11, ProbeSize: 1 << 11, ZipfBuild: 1.0, Seed: 7}

// TestFaultNZeroFaultMatchesServeMachinery pins the experiment-level
// zero-fault equivalence: the faultN clean row (RunFaulty with a Sched map
// and no faults or policies) is bit-identical to plain serve.Run over the
// same replicas with the identical map applied at the machine layer
// (exec.RemapMachine). The two runs apply the position→index map in
// different layers, so agreement means the fault coordinator's scheduling
// changes nothing simulated.
func TestFaultNZeroFaultMatchesServeMachinery(t *testing.T) {
	const workers = 2
	fj := defaultWorkloads.faultJoin(faultDiffSpec, workers, 3)
	arrivals := func(w int) []uint64 {
		return cachedArrivalSchedule("deterministic", 600, len(fj.scheds[w]), uint64(w)+1)
	}
	opts := serve.Options{
		Hardware:  memsim.XeonX5670(),
		Technique: ops.AMAC,
		Window:    8,
		Prepare:   func(w int, c *memsim.Core) { warmTable(c, fj.joins[w]) },
	}

	// Reference: plain serve.Run, map applied inside the machine.
	refSpecs := make([]serve.Worker[ops.ProbeState], workers)
	for w := 0; w < workers; w++ {
		fj.outs[1][w].Reset()
		refSpecs[w] = serve.Worker[ops.ProbeState]{
			Machine:  exec.RemapMachine[ops.ProbeState]{M: fj.joins[w].ProbeMachine(fj.outs[1][w], true), Idx: fj.scheds[w]},
			Arrivals: arrivals(w),
		}
	}
	ref := serve.Run(opts, refSpecs)

	// Subject: RunFaulty, map applied at the source layer, zero config.
	runFaulty := func(parallel int) serve.Result {
		specs := make([]serve.Worker[ops.ProbeState], workers)
		for w := 0; w < workers; w++ {
			fj.outs[2][w].Reset()
			specs[w] = serve.Worker[ops.ProbeState]{
				Machine:  fj.joins[w].ProbeMachine(fj.outs[2][w], true),
				Arrivals: arrivals(w),
			}
		}
		return serve.RunFaulty(serve.FaultyOptions{Options: opts, Sched: fj.scheds}, specs)
	}

	for _, name := range []string{"first", "again"} {
		got := runFaulty(1)
		if !reflect.DeepEqual(ref.Stats, got.Stats) {
			t.Fatalf("%s: core stats diverge:\nserve.Run  %+v\nRunFaulty  %+v", name, ref.Stats, got.Stats)
		}
		if !reflect.DeepEqual(ref.Latency, got.Latency) {
			t.Fatalf("%s: latency recorders diverge:\nserve.Run  %v\nRunFaulty  %v", name, &ref.Latency, &got.Latency)
		}
		if !reflect.DeepEqual(ref.Sched, got.Sched) {
			t.Fatalf("%s: scheduler stats diverge:\nserve.Run  %+v\nRunFaulty  %+v", name, ref.Sched, got.Sched)
		}
		for w := 0; w < workers; w++ {
			if !reflect.DeepEqual(ref.PerWorker[w].Stats, got.PerWorker[w].Stats) {
				t.Fatalf("%s: worker %d stats diverge", name, w)
			}
		}
	}
	if ref.Latency.Completed != uint64(faultDiffSpec.ProbeSize) {
		t.Fatalf("completed %d of %d", ref.Latency.Completed, faultDiffSpec.ProbeSize)
	}
}

// TestFaultNShapes asserts the degradation ladder's decisive facts at tiny
// scale: the naive run's tail blows past the clean baseline, the full
// recovery stack keeps surviving p99 inside the deadline (derived as 2x the
// clean p99), the recovery paths actually fire, and no slot leaks.
func TestFaultNShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full tiny-scale faultN ladder")
	}
	cfg := Config{Scale: Tiny, Parallel: 1, SLOBudget: 1}
	tables, err := Run("faultN", cfg)
	if err != nil {
		t.Fatal(err)
	}
	lat := tables[0]
	cleanP99 := lat.Get("clean", "p99")
	naiveP99 := lat.Get("naive", "p99")
	breakerP99 := lat.Get("breaker", "p99")
	if cleanP99 <= 0 {
		t.Fatalf("clean p99 = %v", cleanP99)
	}
	if naiveP99 < 3*cleanP99 {
		t.Errorf("naive p99 %.2f should blow past clean %.2f under an unmitigated slowdown", naiveP99, cleanP99)
	}
	if breakerP99 > 2.05*cleanP99 {
		t.Errorf("full-stack p99 %.2f should stay within the 2x-clean deadline (clean %.2f)", breakerP99, cleanP99)
	}

	outs, recov := tables[1], tables[2]
	if served := outs.Get("breaker", "served"); served < 0.5 {
		t.Errorf("full stack served only %.2f of offered", served)
	}
	if recov.Get("hedge", "hedged") == 0 || recov.Get("hedge", "hedge-wins") == 0 {
		t.Error("hedge row issued no winning hedges")
	}
	if recov.Get("breaker", "rerouted") == 0 || recov.Get("breaker", "breaker-trips") == 0 {
		t.Error("breaker row never tripped or rerouted")
	}
	if outs.Get("slo", "shed") == 0 {
		t.Error("slo row (budget 1 cycle) shed nothing")
	}
	for _, row := range []string{"clean", "naive", "deadline", "hedge", "breaker", "slo"} {
		total := outs.Get(row, "served") + outs.Get(row, "timed-out") + outs.Get(row, "failed") +
			outs.Get(row, "shed") + outs.Get(row, "dropped")
		if total < 0.999 || total > 1.001 {
			t.Errorf("%s: outcome fractions sum to %.4f, want 1", row, total)
		}
	}
}

// TestFaultNSlotAccounting runs the full-stack row directly and asserts the
// engine-level no-leak invariant: every initiated slot is accounted as
// completed, timed out, or aborted — under fault churn, hedges and retries.
func TestFaultNSlotAccounting(t *testing.T) {
	const workers = 2
	fj := defaultWorkloads.faultJoin(faultDiffSpec, workers, 3)
	specs := make([]serve.Worker[ops.ProbeState], workers)
	for w := 0; w < workers; w++ {
		fj.outs[1][w].Reset()
		specs[w] = serve.Worker[ops.ProbeState]{
			Machine:  fj.joins[w].ProbeMachine(fj.outs[1][w], true),
			Arrivals: cachedArrivalSchedule("poisson", 100, len(fj.scheds[w]), uint64(w)+1),
		}
	}
	res := serve.RunFaulty(serve.FaultyOptions{
		Options: serve.Options{
			Hardware:  memsim.XeonX5670(),
			Technique: ops.AMAC,
			Window:    8,
			Prepare:   func(w int, c *memsim.Core) { warmTable(c, fj.joins[w]) },
		},
		// The slowdown overloads shard 1 (6x its service time at this load)
		// and the crash starts the instant it ends, while the engine is still
		// draining the backlog — exercising both deadline timeouts and
		// in-flight aborts.
		Faults: &fault.Schedule{Episodes: []fault.Episode{
			{Kind: fault.Slow, Shard: 1, Start: 20_000, Dur: 30_000, Factor: 6},
			{Kind: fault.Crash, Shard: 1, Start: 50_000, Dur: 20_000},
		}},
		Deadline: 8_000,
		Retry:    fault.RetryPolicy{Max: 2, Backoff: 4_000},
		Hedge:    fault.HedgePolicy{Delay: 6_000},
		Breaker:  &fault.BreakerConfig{Cooldown: 32_000, MinSamples: 4},
		Sched:    fj.scheds,
	}, specs)

	s := res.Sched
	if s.Initiated != s.Completed+s.TimedOut+s.Aborted {
		t.Fatalf("slot leak: initiated %d != completed %d + timedOut %d + aborted %d",
			s.Initiated, s.Completed, s.TimedOut, s.Aborted)
	}
	if s.TimedOut == 0 || s.Aborted == 0 {
		t.Fatalf("scenario should exercise both in-flight timeouts (%d) and crash aborts (%d)", s.TimedOut, s.Aborted)
	}
	r := res.Latency
	n := uint64(faultDiffSpec.ProbeSize)
	if r.Offered != n {
		t.Fatalf("offered %d of %d", r.Offered, n)
	}
	if got := r.Completed + r.TimedOut + r.Failed + r.Shed + r.Dropped; got != n {
		t.Fatalf("request accounting: %d resolved of %d (%+v)", got, n, &r)
	}
	if res.Faults == nil || res.Faults.Episodes != 2 {
		t.Fatalf("fault summary %+v, want 2 episodes", res.Faults)
	}
}

package experiments

import (
	"strings"
	"testing"

	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/relation"
)

// tinyCfg runs experiments at smoke-test scale: functional coverage of every
// experiment path, not performance shapes (those are asserted in
// shapes_test.go at a scale where the working sets exceed the LLC).
func tinyCfg() Config { return Config{Scale: Tiny, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	// Every artifact of the paper's evaluation must be registered.
	want := []string{
		"fig3", "table3", "fig5a", "fig5b", "fig6", "fig7", "fig8", "table4",
		"fig9", "fig10", "fig11", "fig12a", "fig12b", "fig13",
		"abl-inflight", "abl-refill", "abl-mshr", "scaleN",
		"serveN", "adaptN", "pipeN",
	}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %q is not registered", id)
		}
	}
	if len(Registry()) < len(want) {
		t.Fatalf("registry has %d entries, want at least %d", len(Registry()), len(want))
	}
	for _, d := range Registry() {
		if d.Title == "" || d.Run == nil {
			t.Fatalf("descriptor %q incomplete", d.ID)
		}
	}
}

func TestFindUnknown(t *testing.T) {
	if _, ok := Find("nope"); ok {
		t.Fatal("unknown id should not be found")
	}
	if _, err := Run("nope", tinyCfg()); err == nil {
		t.Fatal("running an unknown id should fail")
	}
}

func TestParseScale(t *testing.T) {
	for _, s := range []string{"tiny", "small", "paper"} {
		if _, err := ParseScale(s); err != nil {
			t.Fatalf("ParseScale(%q): %v", s, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("invalid scale accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.scale() != Small || c.seed() == 0 || c.window() != 10 {
		t.Fatalf("defaults wrong: %v %v %v", c.scale(), c.seed(), c.window())
	}
	if got := c.workerCounts(); len(got) != 5 || got[0] != 1 || got[4] != 16 {
		t.Fatalf("default worker sweep wrong: %v", got)
	}
	if got := (Config{Workers: 6}).workerCounts(); len(got) != 4 || got[3] != 6 {
		t.Fatalf("capped worker sweep wrong: %v", got)
	}
	if got := (Config{Workers: 4}).workerCounts(); len(got) != 3 || got[2] != 4 {
		t.Fatalf("power-of-two cap should not duplicate: %v", got)
	}
	if len(Config{Scale: Paper}.sizes().bstSizes) == 0 {
		t.Fatal("paper scale must define BST sizes")
	}
}

// TestEveryExperimentRunsAtTinyScale executes the full registry at smoke
// scale and sanity-checks the produced tables.
func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny-scale sweep still takes a few seconds")
	}
	for _, d := range Registry() {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			tables := d.Run(tinyCfg())
			if len(tables) == 0 {
				t.Fatal("experiment produced no tables")
			}
			for _, tab := range tables {
				if tab.ID == "" || len(tab.RowLabels) == 0 || len(tab.ColLabels) == 0 {
					t.Fatalf("table %q malformed", tab.ID)
				}
				if !strings.HasPrefix(tab.ID, d.ID) {
					t.Fatalf("table id %q does not extend experiment id %q", tab.ID, d.ID)
				}
				positive := 0
				for i := range tab.Values {
					if len(tab.Values[i]) != len(tab.ColLabels) {
						t.Fatalf("table %q row %d has %d values, want %d", tab.ID, i, len(tab.Values[i]), len(tab.ColLabels))
					}
					for _, v := range tab.Values[i] {
						if v < 0 || v != v {
							t.Fatalf("table %q contains invalid value %v", tab.ID, v)
						}
						if v > 0 {
							positive++
						}
					}
				}
				if positive == 0 {
					t.Fatalf("table %q contains no positive measurements", tab.ID)
				}
				if tab.String() == "" {
					t.Fatalf("table %q renders empty", tab.ID)
				}
			}
		})
	}
}

func TestPhaseResultDerivedMetrics(t *testing.T) {
	var zero phaseResult
	if zero.cyclesPerTuple() != 0 || zero.instrPerTuple() != 0 || zero.throughputMTuplesPerSec(1e9, 4) != 0 {
		t.Fatal("zero phase should produce zero metrics")
	}
	r := phaseResult{cycles: 1000, tuples: 100}
	if r.cyclesPerTuple() != 10 {
		t.Fatalf("cyclesPerTuple = %v", r.cyclesPerTuple())
	}
	// 100 tuples in 1000 cycles at 1 GHz = 1 us -> 100 Mtuples/s per thread.
	if got := r.throughputMTuplesPerSec(1e9, 2); got != 200 {
		t.Fatalf("throughput = %v, want 200", got)
	}
}

func TestRunJoinDefensiveDefaults(t *testing.T) {
	sz := tinyCfg().sizes()
	res := runJoin(defaultEnv, joinConfig{
		machine: memsim.XeonX5670(),
		spec:    relation.JoinSpec{BuildSize: sz.joinSmall, ProbeSize: sz.joinSmall, Seed: 1},
		tech:    ops.AMAC,
	})
	if res.probe.cycles == 0 || res.probe.tuples == 0 {
		t.Fatal("probe phase not measured")
	}
	if res.probe.outputCount == 0 {
		t.Fatal("probe produced no output")
	}
}

func TestSkewLabelAndLog2(t *testing.T) {
	if skewLabel(0.5, 0) != "[0.5, 0]" {
		t.Fatalf("skewLabel = %q", skewLabel(0.5, 0))
	}
	if log2(1) != 0 || log2(2) != 1 || log2(1<<20) != 20 {
		t.Fatal("log2 wrong")
	}
	if itoa(0) != "0" || itoa(27) != "27" {
		t.Fatal("itoa wrong")
	}
}

package experiments

import (
	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/profile"
	"amac/internal/relation"
)

func init() {
	register(Descriptor{ID: "fig9", Title: "Group-by: cycles per input tuple for small and large relations under skew (Xeon)", Run: fig9})
	register(Descriptor{ID: "fig12b", Title: "Group-by on SPARC T4: cycles per input tuple under skew", Run: fig12b})
}

// groupBySkews are the key distributions of Figure 9 and Figure 12b.
var groupBySkews = []struct {
	label string
	zipf  float64
}{
	{"Uniform", 0},
	{"Zipf (z=0.5)", 0.5},
	{"Zipf (z=1)", 1.0},
}

// runGroupByFigure measures cycles per input tuple for every technique and
// skew at the given input sizes.
func runGroupByFigure(cfg Config, id, title string, machine memsim.Config, inputSizes map[string]int) []*profile.Table {
	var out []*profile.Table
	for sizeLabel, size := range inputSizes {
		rows := make([]string, len(groupBySkews))
		for i, s := range groupBySkews {
			rows[i] = s.label
		}
		t := profile.New(id+"-"+sizeLabel, title+", input 2^"+itoa(log2(size))+" tuples", "cycles/input tuple", rows, techColumns)
		t.AddNote("each distinct key appears %d times when uniform; six aggregate functions per match; scale %q", cfg.sizes().gbRepeats, cfg.scale())
		type cell struct {
			row  string
			tech ops.Technique
		}
		var cells []cell
		var tasks []func(*sweepEnv) phaseResult
		for _, s := range groupBySkews {
			for _, tech := range ops.Techniques {
				gc := groupByConfig{
					machine: machine,
					spec:    relation.GroupBySpec{Size: size, Repeats: cfg.sizes().gbRepeats, Zipf: s.zipf, Seed: cfg.seed()},
					tech:    tech,
					window:  cfg.window(),
				}
				cells = append(cells, cell{s.label, tech})
				tasks = append(tasks, func(*sweepEnv) phaseResult { return runGroupBy(gc) })
			}
		}
		for i, res := range runSweep(cfg, tasks) {
			t.Set(cells[i].row, cells[i].tech.String(), res.cyclesPerTuple())
		}
		out = append(out, t)
	}
	return out
}

func fig9(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	small := runGroupByFigure(cfg, "fig9", "Group-by on Xeon x5670", memsim.XeonX5670(), map[string]int{"small": sz.gbSmall})
	large := runGroupByFigure(cfg, "fig9", "Group-by on Xeon x5670", memsim.XeonX5670(), map[string]int{"large": sz.gbLarge})
	return append(small, large...)
}

func fig12b(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	return runGroupByFigure(cfg, "fig12b", "Group-by on SPARC T4", memsim.SPARCT4(), map[string]int{"large": sz.gbLarge})
}

// itoa avoids importing strconv for a single call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

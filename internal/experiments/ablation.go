package experiments

import (
	"fmt"

	"amac/internal/core"
	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/profile"
	"amac/internal/relation"
)

func init() {
	register(Descriptor{ID: "abl-inflight", Title: "Ablation: AMAC probe cost across a wide range of in-flight lookups (Section 6 discussion)", Run: ablInflight})
	register(Descriptor{ID: "abl-refill", Title: "Ablation: AMAC with and without the merged terminal/initial stage (immediate slot refill)", Run: ablRefill})
	register(Descriptor{ID: "abl-mshr", Title: "Ablation: sensitivity of all techniques to the number of L1-D MSHRs", Run: ablMSHR})
}

// ablInflight sweeps the AMAC circular-buffer width well past the hardware
// MLP limit, quantifying the Section 6 observation that very large in-flight
// counts stop helping once the MSHRs are saturated.
func ablInflight(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	widths := []int{1, 2, 4, 8, 10, 16, 32, 64}
	rows := make([]string, len(widths))
	for i, w := range widths {
		rows[i] = fmt.Sprintf("%d", w)
	}
	t := profile.New("abl-inflight", "AMAC probe cost versus circular-buffer width (Xeon, large uniform join)", "cycles/probe tuple", rows, []string{"AMAC"})
	t.AddNote("the Xeon core supports 10 outstanding L1-D misses; widths beyond it cannot add MLP")
	var tasks []func(*sweepEnv) joinResult
	for _, w := range widths {
		jc := joinConfig{
			machine:   memsim.XeonX5670(),
			spec:      relation.JoinSpec{BuildSize: sz.joinLarge, ProbeSize: sz.joinLarge, Seed: cfg.seed()},
			earlyExit: true,
			tech:      ops.AMAC,
			window:    w,
		}
		tasks = append(tasks, func(e *sweepEnv) joinResult { return runJoin(e, jc) })
	}
	for i, res := range runSweep(cfg, tasks) {
		t.Set(fmt.Sprintf("%d", widths[i]), "AMAC", res.probe.cyclesPerTuple())
	}
	return []*profile.Table{t}
}

// ablRefill compares AMAC with and without the merged terminal/initial stage
// optimisation (Section 3.1, optimisation 1) on a skewed probe, where early
// exits are frequent and unfilled slots would otherwise waste MLP.
func ablRefill(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	rows := []string{"Immediate refill (paper)", "Deferred refill"}
	t := profile.New("abl-refill", "AMAC slot refill policy (Xeon, skewed probe [1, 0])", "cycles/probe tuple", rows, []string{"AMAC"})

	for i, disable := range []bool{false, true} {
		j, out := cachedProbeJoin(relation.JoinSpec{
			BuildSize: sz.joinLarge, ProbeSize: sz.joinLarge, ZipfBuild: 1.0, Seed: cfg.seed(),
		}, 0)
		sys := memsim.MustSystem(memsim.XeonX5670())
		c := sys.NewCore()
		m := j.ProbeMachine(out, false)
		core.Run(c, m, core.Options{Width: cfg.window(), DisableImmediateRefill: disable})
		t.Set(rows[i], "AMAC", float64(c.Cycle())/float64(m.NumLookups()))
	}
	return []*profile.Table{t}
}

// ablMSHR sweeps the number of per-core L1-D MSHRs, the hardware resource
// the paper identifies as the single-thread MLP ceiling.
func ablMSHR(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	mshrs := []int{2, 4, 8, 10, 16, 32}
	rows := make([]string, len(mshrs))
	for i, m := range mshrs {
		rows[i] = fmt.Sprintf("%d", m)
	}
	t := profile.New("abl-mshr", "Probe cost versus L1-D MSHR count (Xeon-like core, large uniform join)", "cycles/probe tuple", rows, techColumns)
	t.AddNote("window fixed at 16 in-flight lookups so the MSHR file is the binding limit")
	type cell struct {
		row  string
		tech ops.Technique
	}
	var cells []cell
	var tasks []func(*sweepEnv) joinResult
	for _, n := range mshrs {
		machine := memsim.XeonX5670()
		machine.L1MSHRs = n
		for _, tech := range ops.Techniques {
			jc := joinConfig{
				machine:   machine,
				spec:      relation.JoinSpec{BuildSize: sz.joinLarge, ProbeSize: sz.joinLarge, Seed: cfg.seed()},
				earlyExit: true,
				tech:      tech,
				window:    16,
			}
			cells = append(cells, cell{fmt.Sprintf("%d", n), tech})
			tasks = append(tasks, func(e *sweepEnv) joinResult { return runJoin(e, jc) })
		}
	}
	for i, res := range runSweep(cfg, tasks) {
		t.Set(cells[i].row, cells[i].tech.String(), res.probe.cyclesPerTuple())
	}
	return []*profile.Table{t}
}

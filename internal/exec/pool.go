package exec

import (
	"reflect"
	"sync"
)

// Streaming runs are short and numerous — a load sweep executes one engine
// run per (technique, load, worker) point — so the per-run scratch buffers
// are recycled. The non-generic buffers (Outcome, bool, Request) live in
// plain pools in machine.go and this file; the generic per-lookup state
// slices []S go through a per-state-type pool resolved once per run via
// reflection (the map lookup is nanoseconds against a run of thousands of
// simulated instructions).

// statePools maps a state type to the *sync.Pool recycling its []S buffers.
var statePools sync.Map

// GetStates returns a zeroed []S buffer of length n from the state-type's
// pool, plus the release function that recycles it (the engines defer it;
// the buffer must not be used afterwards).
func GetStates[S any](n int) ([]S, func()) {
	key := reflect.TypeOf((*S)(nil))
	pv, ok := statePools.Load(key)
	if !ok {
		pv, _ = statePools.LoadOrStore(key, &sync.Pool{})
	}
	pool := pv.(*sync.Pool)
	p := GetPooled[S](pool, n)
	return *p, func() { pool.Put(p) }
}

// GetPooled returns a zeroed []T buffer of length n from the given pool,
// which must hold *[]T values (and may start empty — a nil Get allocates).
// It is the one implementation of the recycle-or-grow-and-clear pattern
// every engine scratch buffer uses.
func GetPooled[T any](pool *sync.Pool, n int) *[]T {
	var p *[]T
	if v := pool.Get(); v != nil {
		p = v.(*[]T)
	} else {
		p = new([]T)
	}
	if cap(*p) < n {
		*p = make([]T, n)
	} else {
		*p = (*p)[:n]
		clear(*p)
	}
	return p
}

// requestPool recycles the per-slot Request buffers of the stream engines.
var requestPool sync.Pool

// getRequests returns a zeroed Request buffer of length n from the pool.
func getRequests(n int) *[]Request { return GetPooled[Request](&requestPool, n) }

package exec

import "amac/internal/memsim"

// This file defines the pull-based lookup stream that feeds the streaming
// execution engines (BaselineStream, GroupPrefetchStream,
// SoftwarePipelineStream here; core.RunStream for AMAC). Where a Machine is a
// fixed, pre-materialized batch of lookups — every index 0..NumLookups()-1
// exists before the run starts — a Source hands out lookups one at a time and
// may answer "nothing has arrived yet", which is exactly the situation a
// request-serving system faces under open-loop traffic. Each request carries
// the simulated cycle at which it entered the system, so the source can
// account admission→completion latency per request.

// Request identifies one admitted lookup of a streaming run.
type Request struct {
	// Index is the lookup index the source passed to the underlying
	// machine's Init; it is only meaningful to the source itself.
	Index int
	// Admit is the simulated cycle at which the request entered the system
	// (its arrival), the start point of its measured latency.
	Admit uint64
}

// PullStatus says what a Source returned from Pull.
type PullStatus int

const (
	// Pulled means a request was admitted and its code stage 0 executed; the
	// PullResult carries the stage outcome and the request identity.
	Pulled PullStatus = iota
	// Wait means no request is available at the current cycle but more will
	// arrive; PullResult.NextArrival says when the engine may idle until.
	Wait
	// Exhausted means the stream has ended: every request was either pulled
	// or dropped, and none will arrive.
	Exhausted
)

// PullResult is the outcome of one Source.Pull call.
type PullResult struct {
	Status PullStatus
	// Out is stage 0's outcome (next stage, prefetch target), valid when
	// Status is Pulled.
	Out Outcome
	// Req identifies the pulled request, valid when Status is Pulled.
	Req Request
	// NextArrival is the earliest cycle at which a request will be
	// available, valid when Status is Wait.
	NextArrival uint64
}

// Source is a pull-based stream of lookups over per-lookup state S. The
// streaming engines draw work from it instead of iterating a fixed index
// range: an engine slot that frees asks the source for the next admitted
// request, and the source replies with the request's stage-0 outcome, with
// "wait until cycle X", or with end-of-stream. Completions are reported back
// so the source can record per-request latency.
//
// A Source is driven by a single engine on a single core and need not be
// safe for concurrent use; the sharded service layer gives every worker its
// own source.
type Source[S any] interface {
	// ProvisionedStages is the stage count GP and SPP provision for
	// (Machine.ProvisionedStages of the underlying operator).
	ProvisionedStages() int
	// Pull admits the next available request at simulated cycle now and runs
	// its code stage 0 into state s.
	Pull(c *memsim.Core, s *S, now uint64) PullResult
	// Stage executes the given code stage (>= 1) for an in-flight request,
	// forwarding to the underlying machine.
	Stage(c *memsim.Core, s *S, stage int) Outcome
	// Complete records that the request finished at cycle done.
	Complete(req Request, done uint64)
}

// MachineSource adapts a fixed Machine batch to the Source interface: every
// lookup is considered admitted at cycle 0 (the whole batch is materialized
// before the run starts), handed out in index order, and never waits. It is
// the bridge that lets a streaming engine replay a batch workload — tests
// use it to prove that stream-mode execution produces exactly the batch-mode
// output.
type MachineSource[S any] struct {
	M Machine[S]
	// OnComplete, if non-nil, observes every completion.
	OnComplete func(req Request, done uint64)

	next int
}

// NewMachineSource wraps a machine as an always-ready source.
func NewMachineSource[S any](m Machine[S]) *MachineSource[S] {
	return &MachineSource[S]{M: m}
}

// ProvisionedStages implements Source.
func (ms *MachineSource[S]) ProvisionedStages() int { return ms.M.ProvisionedStages() }

// Pull implements Source: the next lookup in index order, admitted at cycle 0.
func (ms *MachineSource[S]) Pull(c *memsim.Core, s *S, now uint64) PullResult {
	if ms.next >= ms.M.NumLookups() {
		return PullResult{Status: Exhausted}
	}
	i := ms.next
	ms.next++
	out := ms.M.Init(c, s, i)
	return PullResult{Status: Pulled, Out: out, Req: Request{Index: i}}
}

// Stage implements Source.
func (ms *MachineSource[S]) Stage(c *memsim.Core, s *S, stage int) Outcome {
	return ms.M.Stage(c, s, stage)
}

// Complete implements Source.
func (ms *MachineSource[S]) Complete(req Request, done uint64) {
	if ms.OnComplete != nil {
		ms.OnComplete(req, done)
	}
}

// FailKind classifies a request an engine abandoned instead of completing.
type FailKind int

const (
	// FailDeadline: the request's in-flight time exceeded its deadline and
	// the engine closed the slot.
	FailDeadline FailKind = iota
	// FailCrash: the engine was aborted (a crashed shard) with the request
	// still in flight.
	FailCrash
)

// FailSink is implemented by sources that want to hear about requests the
// engine gave up on (deadline expiry, shard crash). Failed requests are never
// also Completed. Sources that do not implement it silently lose the
// notification — the engine's own RunStats still count the failure.
type FailSink interface {
	Fail(req Request, at uint64, kind FailKind)
}

package exec_test

import (
	"testing"

	"amac/internal/exec"
	"amac/internal/exec/exectest"
	"amac/internal/memsim"
	"amac/internal/xrand"
)

func newStreamCore() *memsim.Core {
	sys := memsim.MustSystem(memsim.XeonX5670())
	return sys.NewCore()
}

func streamLengths(n int, seed uint64) []int {
	rng := xrand.New(seed)
	ls := make([]int, n)
	for i := range ls {
		if rng.Intn(10) == 0 {
			ls[i] = 8 + rng.Intn(12)
		} else {
			ls[i] = 1 + rng.Intn(3)
		}
	}
	return ls
}

// runStreamEngine names each adapter so table tests can sweep them.
var streamEngines = map[string]func(c *memsim.Core, src exec.Source[exectest.ChainState]){
	"BaselineStream": func(c *memsim.Core, src exec.Source[exectest.ChainState]) {
		exec.BaselineStream(c, src)
	},
	"GroupPrefetchStream": func(c *memsim.Core, src exec.Source[exectest.ChainState]) {
		exec.GroupPrefetchStream(c, src, 8)
	},
	"SoftwarePipelineStream": func(c *memsim.Core, src exec.Source[exectest.ChainState]) {
		exec.SoftwarePipelineStream(c, src, 8)
	},
}

func TestStreamAdaptersCompleteEveryRequest(t *testing.T) {
	for name, run := range streamEngines {
		t.Run(name, func(t *testing.T) {
			lengths := streamLengths(300, 11)
			m := exectest.NewChainMachine(lengths, 3)
			src := exec.NewMachineSource[exectest.ChainState](m)
			var completions int
			lastDone := uint64(0)
			src.OnComplete = func(req exec.Request, done uint64) {
				completions++
				if done < lastDone {
					t.Fatalf("completion cycles must be non-decreasing: %d after %d", done, lastDone)
				}
				lastDone = done
			}
			c := newStreamCore()
			run(c, src)
			if completions != len(lengths) {
				t.Fatalf("source saw %d completions, want %d", completions, len(lengths))
			}
			if idle := c.Stats().IdleCycles; idle != 0 {
				t.Fatalf("a batch replay (everything admitted at cycle 0) must never idle, got %d idle cycles", idle)
			}
			if len(m.Completions) != len(lengths) {
				t.Fatalf("machine completed %d of %d lookups", len(m.Completions), len(lengths))
			}
			for i, want := range lengths {
				if m.Visits[i] != want {
					t.Fatalf("lookup %d visited %d nodes, want %d", i, m.Visits[i], want)
				}
			}
		})
	}
}

func TestStreamAdaptersHandleEmptySource(t *testing.T) {
	for name, run := range streamEngines {
		t.Run(name, func(t *testing.T) {
			m := exectest.NewChainMachine(nil, 3)
			c := newStreamCore()
			run(c, exec.NewMachineSource[exectest.ChainState](m))
			if len(m.Completions) != 0 {
				t.Fatal("empty source must complete nothing")
			}
		})
	}
}

func TestStreamAdaptersResolveLatchConflicts(t *testing.T) {
	// GP and SPP must drain latch-conflicting requests through their retry
	// and bail-out paths without deadlocking; the baseline serializes, so
	// conflicts cannot arise there at all.
	for name, engine := range map[string]func(c *memsim.Core, src exec.Source[exectest.LatchState]){
		"GroupPrefetchStream": func(c *memsim.Core, src exec.Source[exectest.LatchState]) {
			exec.GroupPrefetchStream(c, src, 6)
		},
		"SoftwarePipelineStream": func(c *memsim.Core, src exec.Source[exectest.LatchState]) {
			exec.SoftwarePipelineStream(c, src, 6)
		},
	} {
		t.Run(name, func(t *testing.T) {
			m := exectest.NewLatchMachine(150, 3)
			engine(newStreamCore(), exec.NewMachineSource[exectest.LatchState](m))
			if len(m.Completions) != 150 {
				t.Fatalf("completed %d of 150 latched lookups", len(m.Completions))
			}
		})
	}
}

// delayedSource wraps a MachineSource and releases requests only at
// scheduled cycles, to exercise the Wait/AdvanceTo path without pulling in
// the serve package (which depends on exec).
type delayedSource struct {
	*exec.MachineSource[exectest.ChainState]
	arrivals []uint64
	released int
}

func (d *delayedSource) Pull(c *memsim.Core, s *exectest.ChainState, now uint64) exec.PullResult {
	if d.released >= len(d.arrivals) {
		return exec.PullResult{Status: exec.Exhausted}
	}
	if d.arrivals[d.released] > now {
		return exec.PullResult{Status: exec.Wait, NextArrival: d.arrivals[d.released]}
	}
	pr := d.MachineSource.Pull(c, s, now)
	if pr.Status == exec.Pulled {
		pr.Req.Admit = d.arrivals[d.released]
		d.released++
	}
	return pr
}

func TestStreamAdaptersIdleUntilArrivals(t *testing.T) {
	// Requests arrive far apart: every engine must idle-advance to each
	// arrival instead of spinning, and still complete everything.
	const n = 20
	const gap = 100000
	arrivals := make([]uint64, n)
	for i := range arrivals {
		arrivals[i] = uint64(i) * gap
	}
	for name, run := range streamEngines {
		t.Run(name, func(t *testing.T) {
			m := exectest.NewChainMachine(streamLengths(n, 5), 3)
			src := &delayedSource{MachineSource: exec.NewMachineSource[exectest.ChainState](m), arrivals: arrivals}
			c := newStreamCore()
			run(c, src)
			if len(m.Completions) != n {
				t.Fatalf("completed %d of %d", len(m.Completions), n)
			}
			if c.Cycle() < arrivals[n-1] {
				t.Fatalf("clock %d never reached the last arrival %d", c.Cycle(), arrivals[n-1])
			}
			if idle := c.Stats().IdleCycles; idle == 0 {
				t.Fatal("sparse arrivals must be bridged by idle cycles, not busy work")
			}
		})
	}
}

package exec

import "amac/internal/memsim"

// GroupPrefetch runs the machine under Group Prefetching (Chen et al.), the
// first of the paper's two prior-art techniques (Section 2.2.1): lookups are
// statically arranged into groups of `group` and every code stage is executed
// for the whole group before the next stage begins, so up to `group`
// independent prefetches are in flight at a time.
//
// The rigidity the paper criticises is reproduced faithfully:
//
//   - a lookup that terminates early still costs a status check in every
//     remaining stage of its group (lost MLP and wasted instructions),
//   - a lookup that needs more stages than provisioned is completed by a
//     sequential clean-up pass at the group boundary,
//   - a lookup that cannot acquire a latch keeps retrying in its remaining
//     stages and, if still blocked, is also handled by the clean-up pass,
//   - a new group can only start once the previous group has fully finished.
func GroupPrefetch[S any](c *memsim.Core, m Machine[S], group int) {
	p := c.Profiler()
	p.Push(p.Frame("GP"))
	defer p.Pop()
	if group < 1 {
		group = 1
	}
	n := m.NumLookups()
	depth := m.ProvisionedStages()
	if depth < 1 {
		depth = 1
	}

	states, putStates := GetStates[S](group)
	defer putStates()
	currentP, doneP := getOutcomes(group), getFlags(group)
	defer func() { outcomePool.Put(currentP); flagPool.Put(doneP) }()
	current, done := *currentP, *doneP

	for base := 0; base < n; base += group {
		g := group
		if base+g > n {
			g = n - base
		}

		// Code stage 0 for the whole group: read the input tuples, compute
		// the first target addresses, issue the first prefetches.
		for j := 0; j < g; j++ {
			c.Instr(CostGPStage)
			p.PushStage(0)
			out := m.Init(c, &states[j], base+j)
			p.Pop()
			issuePrefetch(c, out)
			current[j] = out
			done[j] = out.Done
		}

		// Code stages 1..depth-1, each executed for the whole group.
		for round := 1; round < depth; round++ {
			for j := 0; j < g; j++ {
				if done[j] {
					// The lookup already terminated: the stage is skipped
					// but the group loop still checks and propagates its
					// status.
					c.Instr(CostGPSkip)
					continue
				}
				c.Instr(CostGPStage)
				p.PushStage(current[j].NextStage)
				out := m.Stage(c, &states[j], current[j].NextStage)
				p.Pop()
				if out.Retry {
					// Latch held by another in-flight lookup: burn the
					// stage and retry in the next round (or the clean-up
					// pass).
					current[j].NextStage = out.NextStage
					current[j].Prefetch = 0
					continue
				}
				issuePrefetch(c, out)
				current[j] = out
				done[j] = out.Done
			}
		}

		// Clean-up pass: lookups whose chains are longer than provisioned
		// (or that are still blocked on a latch) are completed without the
		// benefit of prefetching before the next group may start.
		finishSequential(c, m.Stage, states[:g], current[:g], done[:g], nil)
	}
}

// finishSequential completes every unfinished lookup without prefetching.
// Lookups are serviced round-robin so that a lookup blocked on a latch held
// by another unfinished lookup of the same batch cannot deadlock the pass.
// onDone, if non-nil, observes each completion (the streaming GP adapter
// records per-request latency there); stage is the machine's Stage method.
func finishSequential[S any](c *memsim.Core, stage func(*memsim.Core, *S, int) Outcome, states []S, current []Outcome, done []bool, onDone func(j int)) {
	p := c.Profiler()
	p.Push(p.Frame("cleanup"))
	defer p.Pop()
	remaining := 0
	for j := range done {
		if !done[j] {
			remaining++
			c.Instr(CostBailout)
		}
	}
	stuck := 0
	for remaining > 0 {
		progressed := false
		for j := range done {
			if done[j] {
				continue
			}
			c.Instr(CostLoopIter)
			p.PushStage(current[j].NextStage)
			out := stage(c, &states[j], current[j].NextStage)
			p.Pop()
			if out.Retry {
				c.Instr(CostRetrySpin)
				current[j].NextStage = out.NextStage
				continue
			}
			progressed = true
			current[j] = out
			if out.Done {
				done[j] = true
				remaining--
				if onDone != nil {
					onDone(j)
				}
			}
		}
		if progressed {
			stuck = 0
			continue
		}
		stuck++
		if stuck > retryLimit {
			panic("exec: clean-up pass made no progress; a latch is held by a lookup outside the batch")
		}
	}
}

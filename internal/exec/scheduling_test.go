package exec_test

import (
	"testing"

	"amac/internal/exec"
	"amac/internal/exec/exectest"
)

// TestGroupPrefetchRespectsGroupBarrier: GP may not start a lookup from the
// next group before every lookup of the current group has completed, which
// is exactly the rigidity the paper criticises. With chains of different
// lengths inside a group, the first `group` completions must still all come
// from the first `group` input indices.
func TestGroupPrefetchRespectsGroupBarrier(t *testing.T) {
	lengths := make([]int, 40)
	for i := range lengths {
		lengths[i] = 1 + (i % 7)
	}
	const group = 8
	m := exectest.NewChainMachine(lengths, 4)
	exec.GroupPrefetch(newCore(), m, group)

	for pos, idx := range m.Completions {
		if idx/group > pos/group {
			t.Fatalf("lookup %d (group %d) completed at position %d, before group %d finished",
				idx, idx/group, pos, idx/group-1)
		}
	}
}

// TestSoftwarePipelineRefillsWithoutGroupBarrier: SPP starts new lookups as
// slots expire, so completions from "later groups" may appear before all
// earlier lookups finish when chain lengths vary. This distinguishes its
// schedule from GP's.
func TestSoftwarePipelineRefillsWithoutGroupBarrier(t *testing.T) {
	lengths := make([]int, 60)
	for i := range lengths {
		if i%10 == 0 {
			lengths[i] = 12 // occasional long chain
		} else {
			lengths[i] = 1
		}
	}
	m := exectest.NewChainMachine(lengths, 3)
	exec.SoftwarePipeline(newCore(), m, 10)

	// Some short lookup with an index beyond the first "group" of 10 must
	// complete before the long lookup 0 does.
	longPos := -1
	firstLatePos := -1
	for pos, idx := range m.Completions {
		if idx == 0 {
			longPos = pos
		}
		if idx >= 20 && firstLatePos == -1 {
			firstLatePos = pos
		}
	}
	if longPos == -1 || firstLatePos == -1 {
		t.Fatal("expected both markers in the completion order")
	}
	if firstLatePos > longPos {
		t.Fatalf("SPP should have refilled slots past the long lookup: lookup 0 finished at %d, first index>=20 at %d",
			longPos, firstLatePos)
	}
}

// TestBaselineNeverIssuesPrefetches: the baseline must not benefit from the
// prefetch targets the stages publish.
func TestBaselineNeverIssuesPrefetches(t *testing.T) {
	c := newCore()
	m := exectest.NewChainMachine(uniformLengths(100, 3), 4)
	exec.Baseline(c, m)
	if c.Stats().Prefetches != 0 {
		t.Fatalf("baseline issued %d prefetches", c.Stats().Prefetches)
	}
}

// TestPrefetchingEnginesIssuePrefetches: GP and SPP must issue roughly one
// prefetch per node visit.
func TestPrefetchingEnginesIssuePrefetches(t *testing.T) {
	for name, run := range map[string]func(m *exectest.ChainMachine) uint64{
		"gp": func(m *exectest.ChainMachine) uint64 {
			c := newCore()
			exec.GroupPrefetch(c, m, 8)
			return c.Stats().Prefetches
		},
		"spp": func(m *exectest.ChainMachine) uint64 {
			c := newCore()
			exec.SoftwarePipeline(c, m, 8)
			return c.Stats().Prefetches
		},
	} {
		m := exectest.NewChainMachine(uniformLengths(100, 3), 4)
		if got := run(m); got < 250 {
			t.Fatalf("%s issued only %d prefetches for 300 node visits", name, got)
		}
	}
}

package exec

import (
	"fmt"

	"amac/internal/memsim"
)

// Baseline executes the machine's lookups one at a time with no software
// prefetching: each dependent memory access stalls the core for its full
// latency, which is the no-prefetch reference every figure in the paper
// normalizes against.
//
// A stage that returns Retry is spun on (with a per-spin instruction charge),
// matching the baseline implementations' latch spinning; since the baseline
// has only one lookup in flight, retries can only happen if the latch was
// left held by a previous phase, which the machines never do, so the spin
// loop is bounded defensively.
func Baseline[S any](c *memsim.Core, m Machine[S]) {
	p := c.Profiler()
	p.Push(p.Frame("Baseline"))
	defer p.Pop()
	n := m.NumLookups()
	var s S
	for i := 0; i < n; i++ {
		c.Instr(CostLoopIter)
		p.PushStage(0)
		out := m.Init(c, &s, i)
		p.Pop()
		spins := 0
		for !out.Done {
			c.Instr(CostLoopIter)
			p.PushStage(out.NextStage)
			next := m.Stage(c, &s, out.NextStage)
			p.Pop()
			if next.Retry {
				spins++
				c.Instr(CostRetrySpin)
				if spins > retryLimit {
					panic(fmt.Sprintf("exec: baseline lookup %d spun on a latch %d times; machine is stuck", i, spins))
				}
				out.NextStage = next.NextStage
				continue
			}
			spins = 0
			out = next
		}
	}
}

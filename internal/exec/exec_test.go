package exec_test

import (
	"sort"
	"testing"

	"amac/internal/exec"
	"amac/internal/exec/exectest"
	"amac/internal/memsim"
	"amac/internal/xrand"
)

// newCore builds a Xeon-like core for engine tests.
func newCore() *memsim.Core {
	sys := memsim.MustSystem(memsim.XeonX5670())
	return sys.NewCore()
}

// checkAllCompleted verifies that every lookup completed exactly once with
// exactly the expected number of node visits.
func checkAllCompleted(t *testing.T, m *exectest.ChainMachine) {
	t.Helper()
	if len(m.Completions) != len(m.Lengths) {
		t.Fatalf("completed %d of %d lookups", len(m.Completions), len(m.Lengths))
	}
	seen := make(map[int]bool)
	for _, idx := range m.Completions {
		if seen[idx] {
			t.Fatalf("lookup %d completed twice", idx)
		}
		seen[idx] = true
	}
	for i, want := range m.Lengths {
		if m.Visits[i] != want {
			t.Fatalf("lookup %d visited %d nodes, want %d", i, m.Visits[i], want)
		}
	}
}

func uniformLengths(n, l int) []int {
	ls := make([]int, n)
	for i := range ls {
		ls[i] = l
	}
	return ls
}

func variableLengths(n int, seed uint64) []int {
	rng := xrand.New(seed)
	ls := make([]int, n)
	for i := range ls {
		ls[i] = 1 + rng.Intn(9) // 1..9, provisioned depth will be exceeded by some
	}
	return ls
}

func TestBaselineCompletesAllLookups(t *testing.T) {
	m := exectest.NewChainMachine(variableLengths(200, 1), 5)
	exec.Baseline(newCore(), m)
	checkAllCompleted(t, m)
}

func TestBaselineCompletionOrderIsInputOrder(t *testing.T) {
	m := exectest.NewChainMachine(variableLengths(100, 2), 5)
	exec.Baseline(newCore(), m)
	if !sort.IntsAreSorted(m.Completions) {
		t.Fatal("baseline must complete lookups in input order")
	}
}

func TestGroupPrefetchCompletesAllLookups(t *testing.T) {
	for _, group := range []int{1, 3, 10, 64} {
		m := exectest.NewChainMachine(variableLengths(257, 2), 5)
		exec.GroupPrefetch(newCore(), m, group)
		checkAllCompleted(t, m)
	}
}

func TestGroupPrefetchHandlesChainsLongerThanProvisioned(t *testing.T) {
	// Provision only 3 stages; chains of up to 9 require the clean-up pass.
	m := exectest.NewChainMachine(variableLengths(100, 3), 3)
	exec.GroupPrefetch(newCore(), m, 8)
	checkAllCompleted(t, m)
}

func TestSoftwarePipelineCompletesAllLookups(t *testing.T) {
	for _, inflight := range []int{1, 4, 10, 32} {
		m := exectest.NewChainMachine(variableLengths(311, 4), 5)
		exec.SoftwarePipeline(newCore(), m, inflight)
		checkAllCompleted(t, m)
	}
}

func TestSoftwarePipelineHandlesLongChains(t *testing.T) {
	m := exectest.NewChainMachine(variableLengths(100, 5), 3)
	exec.SoftwarePipeline(newCore(), m, 10)
	checkAllCompleted(t, m)
}

func TestPrefetchingEnginesBeatBaselineOnUniformChains(t *testing.T) {
	const n, l = 400, 4
	base := newCore()
	exec.Baseline(base, exectest.NewChainMachine(uniformLengths(n, l), l+1))

	gp := newCore()
	exec.GroupPrefetch(gp, exectest.NewChainMachine(uniformLengths(n, l), l+1), 10)

	spp := newCore()
	exec.SoftwarePipeline(spp, exectest.NewChainMachine(uniformLengths(n, l), l+1), 10)

	if gp.Cycle() >= base.Cycle() {
		t.Fatalf("GP (%d cycles) should beat the baseline (%d cycles) on uniform DRAM-resident chains", gp.Cycle(), base.Cycle())
	}
	if spp.Cycle() >= base.Cycle() {
		t.Fatalf("SPP (%d cycles) should beat the baseline (%d cycles) on uniform DRAM-resident chains", spp.Cycle(), base.Cycle())
	}
}

func TestGroupPrefetchWithGroupOneMatchesBaselineWork(t *testing.T) {
	// With a group of one, GP degenerates to sequential execution with
	// prefetches that cannot be overlapped; it must not be faster than the
	// baseline by more than the noise of the extra bookkeeping.
	n := 100
	base := newCore()
	exec.Baseline(base, exectest.NewChainMachine(uniformLengths(n, 4), 5))
	gp := newCore()
	exec.GroupPrefetch(gp, exectest.NewChainMachine(uniformLengths(n, 4), 5), 1)
	if gp.Cycle() < base.Cycle()*95/100 {
		t.Fatalf("GP with group=1 (%d cycles) should not beat baseline (%d cycles)", gp.Cycle(), base.Cycle())
	}
}

func TestInstructionOverheadOrdering(t *testing.T) {
	// The paper's Table 3: GP executes more instructions per tuple than
	// SPP, which executes more than the baseline.
	n := 500
	lengths := uniformLengths(n, 4)

	base := newCore()
	exec.Baseline(base, exectest.NewChainMachine(lengths, 5))
	gp := newCore()
	exec.GroupPrefetch(gp, exectest.NewChainMachine(lengths, 5), 10)
	spp := newCore()
	exec.SoftwarePipeline(spp, exectest.NewChainMachine(lengths, 5), 10)

	bi := base.Stats().Instructions
	gi := gp.Stats().Instructions
	si := spp.Stats().Instructions
	if !(gi > si && si > bi) {
		t.Fatalf("instruction ordering violated: baseline=%d spp=%d gp=%d", bi, si, gi)
	}
}

func TestEarlyExitWastesGPAndSPPWork(t *testing.T) {
	// All chains are much shorter than provisioned: GP and SPP must pay
	// skip costs, so their instruction counts exceed a run where the
	// provisioning matches reality.
	n := 300
	short := uniformLengths(n, 1)

	gpOver := newCore()
	exec.GroupPrefetch(gpOver, exectest.NewChainMachine(short, 6), 10)
	gpExact := newCore()
	exec.GroupPrefetch(gpExact, exectest.NewChainMachine(short, 2), 10)
	if gpOver.Stats().Instructions <= gpExact.Stats().Instructions {
		t.Fatal("over-provisioned GP should execute more instructions than exactly provisioned GP")
	}

	sppOver := newCore()
	exec.SoftwarePipeline(sppOver, exectest.NewChainMachine(short, 6), 10)
	sppExact := newCore()
	exec.SoftwarePipeline(sppExact, exectest.NewChainMachine(short, 2), 10)
	if sppOver.Stats().Instructions <= sppExact.Stats().Instructions {
		t.Fatal("over-provisioned SPP should execute more instructions than exactly provisioned SPP")
	}
}

func TestLatchConflictsResolvedByAllEngines(t *testing.T) {
	run := func(name string, f func(c *memsim.Core, m *exectest.LatchMachine)) {
		t.Run(name, func(t *testing.T) {
			m := exectest.NewLatchMachine(150, 3)
			f(newCore(), m)
			if len(m.Completions) != 150 {
				t.Fatalf("completed %d of 150 lookups", len(m.Completions))
			}
			seen := make(map[int]bool)
			for _, idx := range m.Completions {
				if seen[idx] {
					t.Fatalf("lookup %d completed twice", idx)
				}
				seen[idx] = true
			}
		})
	}
	run("baseline", func(c *memsim.Core, m *exectest.LatchMachine) { exec.Baseline(c, m) })
	run("gp", func(c *memsim.Core, m *exectest.LatchMachine) { exec.GroupPrefetch(c, m, 8) })
	run("spp", func(c *memsim.Core, m *exectest.LatchMachine) { exec.SoftwarePipeline(c, m, 8) })
}

func TestLatchConflictsOnlyHappenWithMultipleInFlight(t *testing.T) {
	m := exectest.NewLatchMachine(50, 3)
	exec.Baseline(newCore(), m)
	if m.Retries != 0 {
		t.Fatalf("baseline has one lookup in flight; retries = %d", m.Retries)
	}
	m2 := exectest.NewLatchMachine(50, 3)
	exec.GroupPrefetch(newCore(), m2, 8)
	if m2.Retries == 0 {
		t.Fatal("grouped execution of latched lookups should produce conflicts")
	}
}

func TestEnginesToleratePathologicalParameters(t *testing.T) {
	m := exectest.NewChainMachine(uniformLengths(10, 2), 3)
	exec.GroupPrefetch(newCore(), m, 0) // clamps to 1
	checkAllCompleted(t, m)

	m2 := exectest.NewChainMachine(uniformLengths(10, 2), 3)
	exec.SoftwarePipeline(newCore(), m2, -5) // clamps to 1
	checkAllCompleted(t, m2)

	m3 := exectest.NewChainMachine(uniformLengths(3, 2), 0) // depth clamps to 1
	exec.GroupPrefetch(newCore(), m3, 2)
	checkAllCompleted(t, m3)

	m4 := exectest.NewChainMachine(nil, 3)
	exec.Baseline(newCore(), m4) // zero lookups is a no-op
	exec.GroupPrefetch(newCore(), exectest.NewChainMachine(nil, 3), 4)
	exec.SoftwarePipeline(newCore(), exectest.NewChainMachine(nil, 3), 4)
}

func TestGroupPrefetchReachesMLPLimit(t *testing.T) {
	// With a group of 10 and DRAM-resident chains, GP should drive close to
	// the 10-MSHR limit: prefetch issue must occasionally find all MSHRs
	// busy only if the group exceeds the limit.
	cfg := memsim.XeonX5670()
	sys := memsim.MustSystem(cfg)
	c := sys.NewCore()
	m := exectest.NewChainMachine(uniformLengths(300, 4), 5)
	exec.GroupPrefetch(c, m, 15)
	if c.Stats().MSHRFullStalls == 0 {
		t.Fatal("a group of 15 should exceed the 10-entry MSHR file at least once")
	}
}

package exec

import (
	"sync"

	"amac/internal/memsim"
)

// This file implements the sharded multi-core execution layer: a Machine's
// lookups are partitioned across W workers, each worker owns a private
// memsim.Core (private L1/L2; the caller builds one System per worker, since
// Core, Cache and Fabric are not safe for concurrent use) and runs its own
// engine — Baseline, GP, SPP or AMAC — over its shard on its own goroutine.
//
// The simulation stays deterministic under -race and independent of the Go
// scheduler because workers share nothing mutable: each worker's simulated
// timeline is a pure function of its shard, and the merge (max over elapsed
// cycles, sum over event counters) is order-independent. This mirrors the
// paper's cross-core methodology (Section 5.1.1): AMAC extracts inter-lookup
// MLP within one core, and its evaluation scales across cores by
// partitioning the lookups of the probe relation.

// ShardRange is the half-open range of global lookup indices [Lo, Lo+N)
// assigned to one worker.
type ShardRange struct {
	Lo, N int
}

// SplitLookups partitions n lookups across workers as evenly as possible:
// the first n%workers shards receive one extra lookup. It always returns
// exactly workers ranges (trailing ones may be empty when n < workers).
func SplitLookups(n, workers int) []ShardRange {
	if workers < 1 {
		workers = 1
	}
	if n < 0 {
		n = 0
	}
	out := make([]ShardRange, workers)
	base := n / workers
	extra := n % workers
	lo := 0
	for w := range out {
		size := base
		if w < extra {
			size++
		}
		out[w] = ShardRange{Lo: lo, N: size}
		lo += size
	}
	return out
}

// Shard views lookups [Lo, Lo+N) of an underlying machine as a standalone
// machine with local indices 0..N-1, so any engine can run one worker's
// share of the work unchanged. The underlying machine must be safe for the
// concurrent use the caller intends: range-sharding a read-only search
// machine is safe when every worker writes to its own output collector,
// while machines that mutate shared structures (hash build) need genuinely
// partitioned workloads instead (see ops.PartitionJoin).
type Shard[S any] struct {
	M  Machine[S]
	Lo int
	N  int
}

// NumLookups implements Machine.
func (sh Shard[S]) NumLookups() int { return sh.N }

// ProvisionedStages implements Machine.
func (sh Shard[S]) ProvisionedStages() int { return sh.M.ProvisionedStages() }

// Init implements Machine: local lookup i is global lookup Lo+i.
func (sh Shard[S]) Init(c *memsim.Core, s *S, i int) Outcome {
	return sh.M.Init(c, s, sh.Lo+i)
}

// Stage implements Machine.
func (sh Shard[S]) Stage(c *memsim.Core, s *S, stage int) Outcome {
	return sh.M.Stage(c, s, stage)
}

// ParallelStats is the merged outcome of one parallel run.
type ParallelStats struct {
	// PerWorker holds each worker's private-core counters, indexed by
	// worker.
	PerWorker []memsim.Stats
	// Merged aggregates the run: Cycles is the slowest worker's elapsed
	// cycles (the workers run side by side), every other counter is summed.
	Merged memsim.Stats
}

// ElapsedCycles returns the simulated wall-clock cycles of the parallel
// phase: the slowest worker's cycle count.
func (p ParallelStats) ElapsedCycles() uint64 { return p.Merged.Cycles }

// RunParallel executes body(w, cores[w]) for every worker on its own
// goroutine, waits for all of them, and merges the per-core stats. The body
// typically runs one engine over one shard; it must touch only worker-local
// state (its core, its shard's machine, its own output collector).
func RunParallel(cores []*memsim.Core, body func(worker int, c *memsim.Core)) ParallelStats {
	var wg sync.WaitGroup
	for w, c := range cores {
		wg.Add(1)
		go func(w int, c *memsim.Core) {
			defer wg.Done()
			body(w, c)
		}(w, c)
	}
	wg.Wait()

	per := make([]memsim.Stats, len(cores))
	for w, c := range cores {
		per[w] = c.Stats()
	}
	return ParallelStats{PerWorker: per, Merged: memsim.MergeParallel(per)}
}

package exec

import "amac/internal/memsim"

// This file defines the probe interface through which an adaptive controller
// observes and steers an AMAC engine run (package core consults it, package
// adapt implements it), plus Concat, the phase-composite machine the
// adaptive experiments use to build workloads whose character shifts
// mid-run.
//
// The hook exists because of the paper's Section 6 argument: AMAC's per-slot
// independence is what makes the number of in-flight memory accesses a
// runtime knob rather than a compile-time constant — GP and SPP bake their
// group size and pipeline depth into their control flow, so only AMAC can
// act on a mid-run width decision without restarting the batch.

// Window is one probe window of an engine run: the deltas of the core's PMU
// counters since the previous probe, plus the scheduler's view (active
// width, completions) and the instantaneous MSHR occupancy. A controller
// reads phase character off it — StallCycles/Cycles says memory- versus
// compute-bound, MSHRFullWaitCycles says the MLP limit is hit, IdleCycles
// separates "waiting on DRAM" from "waiting on traffic" in serving runs.
type Window struct {
	// Width is the slot-window size in effect during the window.
	Width int
	// Completed is the number of lookups that finished in the window.
	Completed int
	// Outstanding is the MSHR occupancy at the sample point.
	Outstanding int
	// AtCycle is the simulated cycle at the sample point (the window's end):
	// the timebase controllers stamp decision-log entries and trace events
	// with.
	AtCycle uint64

	// Counter deltas over the window (see memsim.Stats for field meanings).
	Cycles             uint64
	Instructions       uint64
	StallCycles        uint64
	IdleCycles         uint64
	Loads              uint64
	MSHRHits           uint64
	MSHRHitWaitCycles  uint64
	MSHRFullStalls     uint64
	MSHRFullWaitCycles uint64
	MemAccesses        uint64
	PrefetchIssued     uint64
	PrefetchDropped    uint64
}

// BusyCycles returns the window's non-idle cycles: the time the engine spent
// executing or stalled on memory rather than waiting for requests to arrive.
func (w Window) BusyCycles() uint64 {
	if w.IdleCycles >= w.Cycles {
		return 0
	}
	return w.Cycles - w.IdleCycles
}

// StallFraction is the share of busy time spent stalled on memory.
func (w Window) StallFraction() float64 {
	busy := w.BusyCycles()
	if busy == 0 {
		return 0
	}
	return float64(w.StallCycles) / float64(busy)
}

// MSHRFullFraction is the share of busy time spent waiting for a free MSHR —
// the signal that the slot window has outrun the hardware's MLP limit.
func (w Window) MSHRFullFraction() float64 {
	busy := w.BusyCycles()
	if busy == 0 {
		return 0
	}
	return float64(w.MSHRFullWaitCycles) / float64(busy)
}

// CyclesPerCompletion is the window's busy cycles per finished lookup, the
// throughput metric a hill-climbing controller optimises. Zero when nothing
// completed.
func (w Window) CyclesPerCompletion() float64 {
	if w.Completed == 0 {
		return 0
	}
	return float64(w.BusyCycles()) / float64(w.Completed)
}

// StopRun is the sentinel a WidthController returns to end the run early:
// the engine stops admitting lookups, drains everything in flight, and
// returns. RunStats.Initiated tells the caller how far the input got, so an
// adaptive executor can stop a run the moment its cost drifts out of band,
// re-calibrate, and resume from the first unserved lookup — without paying
// a pipeline drain at any other point.
const StopRun = -1

// WidthController is consulted by the AMAC engines (core.Run and
// core.RunStream) once per probe window when attached via core.Options. It
// returns the desired slot-window width; zero or the current width means
// keep, and any negative value (StopRun) ends the run early. The engine
// applies changes safely mid-run: growth activates zeroed slots
// immediately, shrinkage (and StopRun) stops refilling the surplus slots
// and retires each as its in-flight lookup completes, so no lookup is ever
// abandoned or restarted.
//
// A WidthController is engine-local state and need not be safe for
// concurrent use; the sharded layers give every worker its own controller.
type WidthController interface {
	Sample(w Window) int
}

// ConcatState is Concat's per-lookup state: the wrapped machine state plus
// the phase that initiated the lookup, so in-flight lookups from both sides
// of a phase boundary route their stages to the right machine instance
// (each phase owns its own table, arena and output).
type ConcatState[S any] struct {
	phase int
	inner S
}

// Concat views a sequence of machines over one state type as a single
// machine: global lookup i belongs to the phase whose index range covers i,
// phases in order. It is the workload-side counterpart of the adaptive
// executor — a join probe that switches from a cache-resident table to a
// memory-resident one mid-batch is Concat of the two probe machines — and is
// deliberately unannounced: engines see one machine whose behaviour shifts,
// exactly like a serving system crossing a working-set boundary.
//
// ProvisionedStages is the maximum over the phases, so GP and SPP provision
// for the deepest phase (their static compromise is part of what the
// adaptive experiments measure).
type Concat[S any] struct {
	Machines []Machine[S]
	// starts[p] is the global index of phase p's first lookup; total is the
	// combined lookup count.
	starts []int
	total  int
}

// NewConcat builds the composite machine over the given phases.
func NewConcat[S any](machines ...Machine[S]) *Concat[S] {
	c := &Concat[S]{Machines: machines}
	c.starts = make([]int, len(machines))
	for p, m := range machines {
		c.starts[p] = c.total
		c.total += m.NumLookups()
	}
	return c
}

// NumLookups implements Machine.
func (c *Concat[S]) NumLookups() int { return c.total }

// ProvisionedStages implements Machine.
func (c *Concat[S]) ProvisionedStages() int {
	depth := 1
	for _, m := range c.Machines {
		if d := m.ProvisionedStages(); d > depth {
			depth = d
		}
	}
	return depth
}

// phaseOf locates the phase covering global lookup i.
func (c *Concat[S]) phaseOf(i int) (phase, local int) {
	// Phases are few (2-4 in practice); a linear scan beats a binary search.
	for p := len(c.starts) - 1; p >= 0; p-- {
		if i >= c.starts[p] {
			return p, i - c.starts[p]
		}
	}
	panic("exec: Concat lookup index out of range")
}

// Init implements Machine. The engines interleave lookups from both sides of
// a phase boundary while the slot window spans it, which is exactly the
// divergent control flow the paper's Section 3 argues per-slot state
// tolerates.
func (c *Concat[S]) Init(core *memsim.Core, s *ConcatState[S], i int) Outcome {
	p, local := c.phaseOf(i)
	s.phase = p
	return c.Machines[p].Init(core, &s.inner, local)
}

// Stage implements Machine: the stage runs on the phase that initiated this
// lookup, whatever phase the engine's input cursor has moved on to.
func (c *Concat[S]) Stage(core *memsim.Core, s *ConcatState[S], stage int) Outcome {
	return c.Machines[s.phase].Stage(core, &s.inner, stage)
}

package exec

import "amac/internal/memsim"

// RemapMachine presents a base machine under a position→lookup-index map:
// lookup i of the wrapper is lookup Idx[i] of the base. It charges nothing
// simulated itself, so a run over the wrapper is bit-identical to a run
// that applies the same map at the source layer (serve.RunFaulty's Sched) —
// the equivalence the fault tier's zero-fault differential tests pin.
type RemapMachine[S any] struct {
	M   Machine[S]
	Idx []int32
}

func (r RemapMachine[S]) NumLookups() int        { return len(r.Idx) }
func (r RemapMachine[S]) ProvisionedStages() int { return r.M.ProvisionedStages() }

func (r RemapMachine[S]) Init(c *memsim.Core, s *S, i int) Outcome {
	return r.M.Init(c, s, int(r.Idx[i]))
}

func (r RemapMachine[S]) Stage(c *memsim.Core, s *S, stage int) Outcome {
	return r.M.Stage(c, s, stage)
}

// Package exectest provides synthetic stage machines used to test the
// execution engines (Baseline, GP, SPP in package exec and AMAC in package
// core) independently of the real database operators.
package exectest

import (
	"amac/internal/exec"
	"amac/internal/memsim"
)

// NodeStride is the distance between consecutive synthetic chain nodes. It
// is several cache lines so that every visit is a distinct memory access and
// the chain does not look like a sequential stream to the hardware
// prefetcher model — real pointer chains are scattered, not contiguous.
const NodeStride = 17 * memsim.LineSize

// ChainState is the per-lookup state of a ChainMachine.
type ChainState struct {
	Index     int
	Remaining int
	Node      memsim.Addr
}

// ChainMachine simulates pointer-chasing lookups with per-lookup chain
// lengths: lookup i visits Lengths[i] nodes, each on its own cache line,
// before completing. It records every completion so tests can verify that
// an engine executed every lookup exactly once with exactly the right number
// of node visits.
type ChainMachine struct {
	// Lengths holds the chain length (number of node visits) per lookup;
	// every entry must be at least 1.
	Lengths []int
	// Base is the address of lookup 0's first node. Lookups are spread far
	// apart so they never share cache lines.
	Base memsim.Addr
	// Provision is the stage count reported to GP/SPP (the paper's N+1).
	Provision int

	// Completions records lookup indices in completion order.
	Completions []int
	// Visits[i] counts node visits performed for lookup i.
	Visits []int
}

// NewChainMachine builds a machine over the given chain lengths.
func NewChainMachine(lengths []int, provision int) *ChainMachine {
	return &ChainMachine{
		Lengths:   lengths,
		Base:      memsim.LineSize, // skip the nil line
		Provision: provision,
		Visits:    make([]int, len(lengths)),
	}
}

// NumLookups implements exec.Machine.
func (m *ChainMachine) NumLookups() int { return len(m.Lengths) }

// ProvisionedStages implements exec.Machine.
func (m *ChainMachine) ProvisionedStages() int { return m.Provision }

// nodeAddr spreads lookups 1 MB apart so their chains never alias.
func (m *ChainMachine) nodeAddr(lookup, hop int) memsim.Addr {
	return m.Base + memsim.Addr(lookup)<<20 + memsim.Addr(hop*NodeStride)
}

// Init implements exec.Machine: stage 0 computes the first node address.
func (m *ChainMachine) Init(c *memsim.Core, s *ChainState, i int) exec.Outcome {
	c.Instr(4) // hash / address computation stand-in
	s.Index = i
	s.Remaining = m.Lengths[i]
	s.Node = m.nodeAddr(i, 0)
	return exec.Outcome{NextStage: 1, Prefetch: s.Node}
}

// Stage implements exec.Machine: stage 1 visits the current node and either
// terminates or advances to the next node.
func (m *ChainMachine) Stage(c *memsim.Core, s *ChainState, stage int) exec.Outcome {
	if stage != 1 {
		panic("exectest: ChainMachine only has stage 1")
	}
	c.Load(s.Node, 16)
	c.Instr(2) // key comparison stand-in
	m.Visits[s.Index]++
	s.Remaining--
	if s.Remaining == 0 {
		m.Completions = append(m.Completions, s.Index)
		return exec.Outcome{Done: true}
	}
	hop := m.Lengths[s.Index] - s.Remaining
	s.Node = m.nodeAddr(s.Index, hop)
	return exec.Outcome{NextStage: 1, Prefetch: s.Node}
}

// LatchState is the per-lookup state of a LatchMachine.
type LatchState struct {
	Index int
	Node  memsim.Addr
}

// LatchMachine simulates an update operator where every lookup must acquire
// a single shared latch in stage 1, hold it across one more memory access,
// and release it in stage 2 — the intra-thread read/write dependency pattern
// that hurts GP and SPP in the paper's group-by experiments. The latch is a
// plain field because the whole simulation is single-threaded.
type LatchMachine struct {
	N         int
	Base      memsim.Addr
	Provision int

	latchOwner  int // -1 when free
	Completions []int
	// MaxHeld tracks how long the latch was ever held, for sanity checks.
	Retries int
}

// NewLatchMachine builds a machine with n lookups.
func NewLatchMachine(n, provision int) *LatchMachine {
	return &LatchMachine{N: n, Base: memsim.LineSize, Provision: provision, latchOwner: -1}
}

// NumLookups implements exec.Machine.
func (m *LatchMachine) NumLookups() int { return m.N }

// ProvisionedStages implements exec.Machine.
func (m *LatchMachine) ProvisionedStages() int { return m.Provision }

// Init implements exec.Machine.
func (m *LatchMachine) Init(c *memsim.Core, s *LatchState, i int) exec.Outcome {
	c.Instr(4)
	s.Index = i
	s.Node = m.Base + memsim.Addr(i)<<20
	return exec.Outcome{NextStage: 1, Prefetch: s.Node}
}

// Stage implements exec.Machine.
func (m *LatchMachine) Stage(c *memsim.Core, s *LatchState, stage int) exec.Outcome {
	switch stage {
	case 1:
		c.Load(s.Node, 16)
		c.Instr(2)
		if m.latchOwner != -1 && m.latchOwner != s.Index {
			m.Retries++
			return exec.Outcome{NextStage: 1, Retry: true}
		}
		m.latchOwner = s.Index
		next := s.Node + NodeStride
		s.Node = next
		return exec.Outcome{NextStage: 2, Prefetch: next}
	case 2:
		c.Load(s.Node, 16)
		c.Instr(3)
		m.latchOwner = -1
		m.Completions = append(m.Completions, s.Index)
		return exec.Outcome{Done: true}
	default:
		panic("exectest: LatchMachine has stages 1 and 2 only")
	}
}

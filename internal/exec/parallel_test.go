package exec_test

import (
	"testing"

	"amac/internal/exec"
	"amac/internal/exec/exectest"
	"amac/internal/memsim"
)

func TestSplitLookups(t *testing.T) {
	cases := []struct {
		n, workers int
	}{
		{0, 1}, {1, 1}, {10, 1}, {10, 3}, {3, 10}, {16, 4}, {17, 4},
	}
	for _, tc := range cases {
		shards := exec.SplitLookups(tc.n, tc.workers)
		if len(shards) != tc.workers {
			t.Fatalf("SplitLookups(%d, %d) returned %d shards", tc.n, tc.workers, len(shards))
		}
		next, total, max, min := 0, 0, 0, tc.n+1
		for _, sh := range shards {
			if sh.Lo != next {
				t.Fatalf("SplitLookups(%d, %d): shard starts at %d, want %d", tc.n, tc.workers, sh.Lo, next)
			}
			if sh.N < 0 {
				t.Fatalf("negative shard size %d", sh.N)
			}
			next = sh.Lo + sh.N
			total += sh.N
			if sh.N > max {
				max = sh.N
			}
			if sh.N < min {
				min = sh.N
			}
		}
		if total != tc.n {
			t.Fatalf("SplitLookups(%d, %d) covers %d lookups", tc.n, tc.workers, total)
		}
		if max-min > 1 {
			t.Fatalf("SplitLookups(%d, %d) imbalanced: min %d, max %d", tc.n, tc.workers, min, max)
		}
	}
	if got := exec.SplitLookups(5, 0); len(got) != 1 || got[0].N != 5 {
		t.Fatalf("SplitLookups with zero workers should clamp to one shard, got %+v", got)
	}
}

func TestShardDelegatesWithOffset(t *testing.T) {
	m := exectest.NewChainMachine(uniformLengths(10, 2), 3)
	sh := exec.Shard[exectest.ChainState]{M: m, Lo: 4, N: 3}
	if sh.NumLookups() != 3 {
		t.Fatalf("NumLookups = %d, want 3", sh.NumLookups())
	}
	if sh.ProvisionedStages() != m.ProvisionedStages() {
		t.Fatal("ProvisionedStages must delegate")
	}
	exec.Baseline(newCore(), sh)
	for i, visits := range m.Visits {
		want := 0
		if i >= 4 && i < 7 {
			want = 2
		}
		if visits != want {
			t.Fatalf("lookup %d visited %d nodes, want %d", i, visits, want)
		}
	}
}

// parallelChainRun shards a chain workload across workers — each worker gets
// its own machine, core and system, as the parallel layer requires — and
// returns the merged stats.
func parallelChainRun(workers int) exec.ParallelStats {
	const lookups = 240
	shards := exec.SplitLookups(lookups, workers)
	cores := make([]*memsim.Core, workers)
	machines := make([]*exectest.ChainMachine, workers)
	for w := range cores {
		sys := memsim.MustSystem(memsim.XeonX5670().ShareLLC(workers))
		cores[w] = sys.NewCore()
		machines[w] = exectest.NewChainMachine(variableLengths(shards[w].N, uint64(w+1)), 5)
	}
	return exec.RunParallel(cores, func(w int, c *memsim.Core) {
		exec.SoftwarePipeline(c, machines[w], 8)
	})
}

// TestRunParallelDeterministic runs the same sharded workload repeatedly and
// under -race: the merged stats must be bit-identical across runs regardless
// of goroutine scheduling, because workers share no mutable state.
func TestRunParallelDeterministic(t *testing.T) {
	first := parallelChainRun(4)
	for run := 0; run < 3; run++ {
		again := parallelChainRun(4)
		if again.Merged != first.Merged {
			t.Fatalf("run %d merged stats differ:\n  %v\nvs\n  %v", run, again.Merged, first.Merged)
		}
		for w := range first.PerWorker {
			if again.PerWorker[w] != first.PerWorker[w] {
				t.Fatalf("run %d worker %d stats differ", run, w)
			}
		}
	}
}

// TestRunParallelMergeSemantics: elapsed cycles are the slowest worker's,
// instructions are summed.
func TestRunParallelMergeSemantics(t *testing.T) {
	ps := parallelChainRun(3)
	var maxCycles, sumInstr uint64
	for _, w := range ps.PerWorker {
		if w.Cycles > maxCycles {
			maxCycles = w.Cycles
		}
		sumInstr += w.Instructions
	}
	if ps.Merged.Cycles != maxCycles {
		t.Fatalf("merged cycles = %d, want slowest worker's %d", ps.Merged.Cycles, maxCycles)
	}
	if ps.ElapsedCycles() != maxCycles {
		t.Fatalf("ElapsedCycles = %d, want %d", ps.ElapsedCycles(), maxCycles)
	}
	if ps.Merged.Instructions != sumInstr {
		t.Fatalf("merged instructions = %d, want sum %d", ps.Merged.Instructions, sumInstr)
	}
	if len(ps.PerWorker) != 3 {
		t.Fatalf("PerWorker has %d entries, want 3", len(ps.PerWorker))
	}
}

// Package exec defines the stage-machine abstraction shared by every
// pointer-chasing technique in this repository and implements the paper's
// two prior-art baselines on top of it:
//
//   - Baseline: one lookup at a time, no software prefetching (Section 2.2.2),
//   - Group Prefetching (GP) of Chen et al. (Section 2.2.1),
//   - Software-Pipelined Prefetching (SPP) of Chen et al. / Kim et al.
//
// The AMAC engine — the paper's contribution — lives in package core and
// schedules the same machines, so all four techniques execute identical
// per-stage work and differ only in scheduling and bookkeeping, exactly as
// in the paper's methodology.
//
// A Machine describes one database operator (hash probe, hash build,
// group-by, BST search, skip list search/insert) as numbered code stages
// over a per-lookup state, mirroring the paper's Table 1. Each stage does
// its own (charged) memory accesses and returns an Outcome saying which
// stage runs next, which address that stage will dereference (so the engine
// can prefetch it), and whether the lookup finished or must be retried
// because a latch is held by another in-flight lookup.
package exec

import (
	"sync"

	"amac/internal/memsim"
)

// Outcome is the result of executing one code stage for one lookup.
type Outcome struct {
	// NextStage is the stage to execute next. Ignored when Done is set.
	NextStage int
	// Prefetch is the address the next stage will dereference; engines
	// that prefetch issue it before moving to another lookup. Zero means
	// there is nothing useful to prefetch.
	Prefetch memsim.Addr
	// PrefetchBytes is the span to prefetch starting at Prefetch; zero
	// means a single cache line.
	PrefetchBytes int
	// Done marks the lookup as complete.
	Done bool
	// Retry means the stage could not make progress (a latch is held by
	// another in-flight lookup) and must be re-executed later. NextStage
	// still names the stage to re-execute.
	Retry bool
}

// Machine is a pointer-chasing operator expressed as code stages over a
// per-lookup state S. Implementations live in package ops.
type Machine[S any] interface {
	// NumLookups is the total number of independent lookups to perform.
	NumLookups() int
	// ProvisionedStages is the number of code stages (the paper's N+1)
	// that GP and SPP should provision for the common case; lookups that
	// need more are handled by those engines' bail-out paths.
	ProvisionedStages() int
	// Init executes code stage 0 for lookup i: it reads the input tuple,
	// computes the first target address, fills in the state, and returns
	// the outcome (normally NextStage 1 plus a prefetch target).
	Init(c *memsim.Core, s *S, i int) Outcome
	// Stage executes the given code stage (>= 1) for an in-flight lookup.
	Stage(c *memsim.Core, s *S, stage int) Outcome
}

// Engine bookkeeping costs, in abstract instructions. They model the loop,
// status-propagation and state-management overhead that distinguishes the
// techniques in the paper's Table 3 (GP executes 2.5x the baseline's
// instructions, SPP 1.9x, AMAC 1.5x). The per-stage operator work itself is
// charged by the stage bodies in package ops.
const (
	// CostLoopIter is the per-iteration loop overhead every technique pays.
	CostLoopIter = 2
	// CostGPStage is GP's per-executed-stage bookkeeping: the group loop,
	// spilling and refilling the per-lookup intermediate state that the
	// next stage's iteration will need, and maintaining the per-lookup
	// status array. GP pays the most per stage, which is why the paper
	// measures it at 2.5x the baseline instruction count (Table 3).
	CostGPStage = 10
	// CostGPSkip is charged when GP visits a lookup whose chain already
	// ended: the code stage is skipped but the status must be checked and
	// propagated (the paper's wasted work under early exit).
	CostGPSkip = 4
	// CostSPPStage is SPP's per-executed-stage bookkeeping (pipeline slot
	// state spill/fill; slightly cheaper than GP's grouped loops).
	CostSPPStage = 8
	// CostSPPSkip is charged when a pipeline slot holds an already-finished
	// lookup that must wait for its static refill point.
	CostSPPSkip = 3
	// CostBailout is charged when GP or SPP hand a lookup that exceeded the
	// provisioned stages to their sequential bail-out path.
	CostBailout = 4
	// CostRetrySpin is charged per spin iteration when a technique must
	// wait on a latch without being able to switch to other work.
	CostRetrySpin = 2
)

// retryLimit bounds latch spinning so that a buggy machine cannot hang the
// simulation; real workloads release latches after a bounded number of
// stages.
const retryLimit = 1 << 20

// outcomePool and flagPool recycle the per-run scheduling buffers of the
// batch and stream engines (the Outcome-per-slot and done-per-slot arrays),
// so parameter sweeps that run an engine thousands of times reuse two
// buffers instead of allocating per run. The generic per-lookup state slice
// []S is recycled through GetStates' per-state-type pools (pool.go).
var outcomePool sync.Pool
var flagPool sync.Pool

// getOutcomes returns a zeroed Outcome buffer of length n from the pool.
func getOutcomes(n int) *[]Outcome { return GetPooled[Outcome](&outcomePool, n) }

// getFlags returns a zeroed bool buffer of length n from the pool.
func getFlags(n int) *[]bool { return GetPooled[bool](&flagPool, n) }

// issuePrefetch issues the prefetch requested by an outcome, if any.
func issuePrefetch(c *memsim.Core, o Outcome) {
	if o.Prefetch == 0 {
		return
	}
	n := o.PrefetchBytes
	if n <= 0 {
		n = 1
	}
	c.PrefetchSpan(o.Prefetch, n)
}

package exec

import (
	"sync"

	"amac/internal/memsim"
)

// batchPipeSlot is one SPP pipeline slot of a batch run (no request
// identity, unlike the streaming variant's pipeSlot).
type batchPipeSlot struct {
	busy    bool // a lookup occupies the slot (it may already be done)
	done    bool // the occupying lookup finished early
	age     int  // code stages elapsed since the lookup entered
	current Outcome
}

// batchPipeSlotPool recycles the batch pipeline-slot buffers across runs.
var batchPipeSlotPool sync.Pool

// getBatchPipeSlots returns a zeroed slot buffer of length n from the pool.
func getBatchPipeSlots(n int) *[]batchPipeSlot {
	return GetPooled[batchPipeSlot](&batchPipeSlotPool, n)
}

// SoftwarePipeline runs the machine under Software-Pipelined Prefetching
// (Chen et al.; also applied to trees by Kim et al.), the second prior-art
// technique of Section 2.2.1: `inflight` lookups occupy pipeline slots at
// staggered stages, every outer iteration advances each slot by one code
// stage, and a slot accepts a new lookup only at its static refill point —
// after the provisioned number of stages has elapsed — regardless of whether
// its lookup actually finished earlier.
//
// The consequences the paper highlights are reproduced:
//
//   - early-terminating lookups waste their remaining pipeline slots
//     (status-check no-ops, lost MLP),
//   - lookups longer than the provisioned depth are bailed out of the
//     pipeline and completed on a sequential side path without prefetching,
//   - a lookup that cannot acquire a latch burns pipeline stages retrying
//     and is eventually serialized on the same side path.
func SoftwarePipeline[S any](c *memsim.Core, m Machine[S], inflight int) {
	p := c.Profiler()
	p.Push(p.Frame("SPP"))
	defer p.Pop()
	if inflight < 1 {
		inflight = 1
	}
	n := m.NumLookups()
	depth := m.ProvisionedStages()
	if depth < 1 {
		depth = 1
	}

	states, putStates := GetStates[S](inflight)
	defer putStates()
	slotsP := getBatchPipeSlots(inflight)
	defer batchPipeSlotPool.Put(slotsP)
	slots := *slotsP

	// Bailed-out lookups: completed alongside the pipeline, one stage per
	// outer iteration, without prefetching. Processing them round-robin
	// (rather than spinning) keeps latch dependencies deadlock-free.
	var bailStates []S
	var bailCurrent []Outcome

	next := 0    // next input lookup to start
	active := 0  // slots holding unfinished lookups
	pending := 0 // bailed-out lookups not yet finished

	for next < n || active > 0 || pending > 0 {
		for j := 0; j < inflight; j++ {
			slot := &slots[j]
			switch {
			case !slot.busy:
				if next >= n {
					continue
				}
				c.Instr(CostSPPStage)
				p.PushStage(0)
				out := m.Init(c, &states[j], next)
				p.Pop()
				next++
				issuePrefetch(c, out)
				slot.busy = true
				slot.done = out.Done
				slot.age = 1
				slot.current = out
				if !out.Done {
					active++
				}
			case slot.done:
				// The lookup terminated before its static slot expired:
				// the pipeline still spends an iteration checking it.
				c.Instr(CostSPPSkip)
				slot.age++
				if slot.age >= depth {
					slot.busy = false
				}
			default:
				c.Instr(CostSPPStage)
				p.PushStage(slot.current.NextStage)
				out := m.Stage(c, &states[j], slot.current.NextStage)
				p.Pop()
				slot.age++
				if out.Retry {
					slot.current.NextStage = out.NextStage
					slot.current.Prefetch = 0
				} else {
					issuePrefetch(c, out)
					slot.current = out
					if out.Done {
						slot.done = true
						active--
					}
				}
				if slot.age >= depth {
					if !slot.done {
						// Longer than provisioned: bail out of the pipeline.
						c.Instr(CostBailout)
						bailStates = append(bailStates, states[j])
						bailCurrent = append(bailCurrent, slot.current)
						pending++
						active--
					}
					slot.busy = false
				}
			}
		}

		// Advance every bailed-out lookup by one (unprefetched) stage and
		// drop the ones that finish, so the side list stays proportional to
		// the number of genuinely outstanding bail-outs.
		keep := 0
		for b := 0; b < len(bailStates); b++ {
			c.Instr(CostLoopIter)
			p.Push(p.Frame("bail"))
			p.PushStage(bailCurrent[b].NextStage)
			out := m.Stage(c, &bailStates[b], bailCurrent[b].NextStage)
			p.Pop()
			p.Pop()
			switch {
			case out.Retry:
				c.Instr(CostRetrySpin)
				bailCurrent[b].NextStage = out.NextStage
			case out.Done:
				pending--
				continue
			default:
				bailCurrent[b] = out
			}
			bailStates[keep] = bailStates[b]
			bailCurrent[keep] = bailCurrent[b]
			keep++
		}
		bailStates = bailStates[:keep]
		bailCurrent = bailCurrent[:keep]

		c.Instr(CostLoopIter)
	}
}

package exec

import "amac/internal/memsim"

// LeaseSource caps an underlying source at a bounded amount of work: the
// streaming engines (BaselineStream, GroupPrefetchStream,
// SoftwarePipelineStream, core.RunStream) loop until their source reports
// end-of-stream, so a layer that needs control back — an adaptive controller
// between retune decisions, a pipeline stage between downstream pulls — wraps
// the source in a lease. When the lease closes (quota spent, gate closed, or
// a NoWait conversion), the engine sees Exhausted, drains its in-flight
// lookups and returns; no request is ever abandoned. The wrapper records why
// the lease ended so the caller can distinguish "more work later" from "the
// stream is truly over".
type LeaseSource[S any] struct {
	// Src is the underlying source.
	Src Source[S]
	// Quota is how many requests may still be admitted; each Pulled request
	// decrements it and a non-positive quota closes the lease.
	Quota int
	// Gate, if non-nil, is consulted before each admission: false closes the
	// lease. Pipeline stages use it for backpressure — the gate watches the
	// downstream pipe's occupancy, so a full pipe drains the engine and hands
	// control back to the consumer.
	Gate func() bool
	// NoWait converts an underlying Wait into a lease close instead of
	// letting the engine idle: Waiting and WaitUntil record the deferred
	// arrival so the caller can propagate it. A pipeline pump runs under
	// NoWait because idling belongs to the sink engine driving the plan, not
	// to an upstream stage pumped mid-pull.
	NoWait bool

	// Completed counts requests finished under this lease.
	Completed int
	// Exhausted reports that the underlying source ended for real.
	Exhausted bool
	// Waiting and WaitUntil record a NoWait-converted Wait: the underlying
	// source has more requests, the earliest arriving at WaitUntil.
	Waiting   bool
	WaitUntil uint64
}

// ProvisionedStages implements Source.
func (l *LeaseSource[S]) ProvisionedStages() int { return l.Src.ProvisionedStages() }

// Pull implements Source: forward until the lease closes, then report
// end-of-stream so the engine drains and hands control back.
func (l *LeaseSource[S]) Pull(c *memsim.Core, s *S, now uint64) PullResult {
	if l.Quota <= 0 || (l.Gate != nil && !l.Gate()) {
		return PullResult{Status: Exhausted}
	}
	pr := l.Src.Pull(c, s, now)
	switch pr.Status {
	case Exhausted:
		l.Exhausted = true
	case Wait:
		if l.NoWait {
			l.Waiting = true
			l.WaitUntil = pr.NextArrival
			return PullResult{Status: Exhausted}
		}
	case Pulled:
		l.Quota--
	}
	return pr
}

// Stage implements Source.
func (l *LeaseSource[S]) Stage(c *memsim.Core, s *S, stage int) Outcome {
	return l.Src.Stage(c, s, stage)
}

// Complete implements Source.
func (l *LeaseSource[S]) Complete(req Request, done uint64) {
	l.Completed++
	l.Src.Complete(req, done)
}

package exec

import (
	"fmt"
	"sync"

	"amac/internal/memsim"
	"amac/internal/obs"
)

// pipeSlot is one SPP pipeline slot of a streaming run.
type pipeSlot struct {
	busy    bool // a request occupies the slot (it may already be done)
	done    bool // the occupying request finished early
	age     int  // code stages elapsed since the request entered
	current Outcome
	req     Request
}

// pipeSlotPool recycles the pipeline-slot buffers across streaming runs.
var pipeSlotPool sync.Pool

// getPipeSlots returns a zeroed pipeline-slot buffer of length n from the pool.
func getPipeSlots(n int) *[]pipeSlot { return GetPooled[pipeSlot](&pipeSlotPool, n) }

// This file adapts the three batch engines to queue-fed streaming execution
// over a Source. The adapters keep each technique's defining restriction on
// WHEN a freed slot may accept new work, because that restriction is exactly
// what the paper's flexibility argument is about:
//
//   - BaselineStream serves one request at a time, start to finish;
//   - GroupPrefetchStream admits requests only at group boundaries: a group
//     runs to full completion (including its sequential clean-up pass) before
//     the queue is consulted again, so requests arriving mid-group wait out
//     the whole batch;
//   - SoftwarePipelineStream refills a pipeline slot only at its static
//     refill point (after the provisioned number of stages), even when the
//     slot's lookup finished early.
//
// AMAC's streaming engine (core.RunStream) refills any slot the moment its
// lookup completes, which is why it holds tail latency flat at arrival rates
// where the batch-boundary engines' queues grow. Completions are always
// reported at the cycle the engine observes Outcome.Done — the response
// could be sent then — so the adapters differ only in admission, never in
// completion accounting.

// waitCycle returns the cycle an engine may idle until after a Wait pull,
// guarding against a source that reports a non-future arrival.
func waitCycle(now, next uint64) uint64 {
	if next <= now {
		return now + 1
	}
	return next
}

// BaselineStream serves requests one at a time with no software prefetching:
// the streaming analogue of Baseline. With a single request in flight, a
// Retry can only be left over from a previous phase, so the spin is bounded
// defensively exactly as in the batch engine.
func BaselineStream[S any](c *memsim.Core, src Source[S]) {
	BaselineStreamTraced(c, src, nil)
}

// BaselineStreamTraced is BaselineStream with an optional trace sink: the
// single in-flight request's lifecycle records on slot track 0. All tracer
// methods are nil-safe, so BaselineStream delegates here with nil and stays
// allocation-free.
func BaselineStreamTraced[S any](c *memsim.Core, src Source[S], tr *obs.CoreTrace) {
	p := c.Profiler()
	p.Push(p.Frame("Baseline"))
	defer p.Pop()
	admitF := p.Frame("admit")
	var s S
	for {
		pullAt := c.Cycle()
		c.Instr(CostLoopIter)
		p.PushStage(0)
		pr := src.Pull(c, &s, c.Cycle())
		p.Pop()
		switch pr.Status {
		case Exhausted:
			return
		case Wait:
			p.Push(admitF)
			c.AdvanceTo(waitCycle(c.Cycle(), pr.NextArrival))
			p.Pop()
			continue
		}
		tr.SlotStart(pullAt, 0, pr.Req.Index)
		out := pr.Out
		spins := 0
		for !out.Done {
			c.Instr(CostLoopIter)
			p.PushStage(out.NextStage)
			next := src.Stage(c, &s, out.NextStage)
			p.Pop()
			if next.Retry {
				spins++
				c.Instr(CostRetrySpin)
				if spins > retryLimit {
					panic(fmt.Sprintf("exec: baseline stream request %d spun on a latch %d times; machine is stuck", pr.Req.Index, spins))
				}
				tr.SlotRetry(c.Cycle(), 0, out.NextStage)
				out.NextStage = next.NextStage
				continue
			}
			spins = 0
			out = next
		}
		src.Complete(pr.Req, c.Cycle())
		tr.SlotEnd(c.Cycle(), 0)
	}
}

// GroupPrefetchStream serves requests under Group Prefetching semantics: up
// to group requests are admitted from the source, the whole group is run to
// completion (every code stage for every member, then the sequential
// clean-up pass), and only then is the queue consulted for the next group.
// If at least one request is admitted the group starts immediately — GP does
// not hold a partial group open waiting for stragglers — but requests that
// arrive after the group launched wait for the entire batch to drain, which
// is the batch-boundary refill penalty the serving experiments measure.
func GroupPrefetchStream[S any](c *memsim.Core, src Source[S], group int) {
	GroupPrefetchStreamTraced(c, src, group, nil)
}

// GroupPrefetchStreamTraced is GroupPrefetchStream with an optional trace
// sink: each group records a begin/end span on the engine track (begin at
// the first member's admission, end after the clean-up pass, the batch-
// boundary refill penalty made visible), and each member's lifecycle records
// on the slot track of its group position. Nil tracer keeps the untraced
// behaviour and allocation profile.
func GroupPrefetchStreamTraced[S any](c *memsim.Core, src Source[S], group int, tr *obs.CoreTrace) {
	p := c.Profiler()
	p.Push(p.Frame("GP"))
	defer p.Pop()
	admitF := p.Frame("admit")
	if group < 1 {
		group = 1
	}
	depth := src.ProvisionedStages()
	if depth < 1 {
		depth = 1
	}

	states, putStates := GetStates[S](group)
	defer putStates()
	currentP, doneP, reqsP := getOutcomes(group), getFlags(group), getRequests(group)
	defer func() { outcomePool.Put(currentP); flagPool.Put(doneP); requestPool.Put(reqsP) }()
	current, done, reqs := *currentP, *doneP, *reqsP

	for {
		// Admission: gather the group from whatever the queue holds now. The
		// whole gather runs under the "admit" frame so the batch-boundary idle
		// GP accrues between groups shows up as GP;admit idle in a flamegraph.
		p.Push(admitF)
		g := 0
		for g < group {
			pullAt := c.Cycle()
			c.Instr(CostGPStage)
			p.PushStage(0)
			pr := src.Pull(c, &states[g], c.Cycle())
			p.Pop()
			if pr.Status == Exhausted {
				if g == 0 {
					p.Pop()
					return
				}
				break
			}
			if pr.Status == Wait {
				if g > 0 {
					break // launch the partial group; GP never waits mid-batch
				}
				c.AdvanceTo(waitCycle(c.Cycle(), pr.NextArrival))
				continue
			}
			if g == 0 {
				tr.GroupStart(pullAt, group)
			}
			tr.SlotStart(pullAt, g, pr.Req.Index)
			issuePrefetch(c, pr.Out)
			current[g] = pr.Out
			done[g] = pr.Out.Done
			reqs[g] = pr.Req
			if pr.Out.Done {
				src.Complete(pr.Req, c.Cycle())
				tr.SlotEnd(c.Cycle(), g)
			}
			g++
		}
		p.Pop()

		// Code stages 1..depth-1, each executed for the whole group.
		for round := 1; round < depth; round++ {
			for j := 0; j < g; j++ {
				if done[j] {
					c.Instr(CostGPSkip)
					continue
				}
				stage := current[j].NextStage
				visitAt := c.Cycle()
				c.Instr(CostGPStage)
				p.PushStage(stage)
				out := src.Stage(c, &states[j], stage)
				p.Pop()
				if out.Retry {
					current[j].NextStage = out.NextStage
					current[j].Prefetch = 0
					tr.SlotRetry(c.Cycle(), j, stage)
					continue
				}
				tr.StageVisit(visitAt, c.Cycle(), j, stage)
				issuePrefetch(c, out)
				current[j] = out
				if out.Done {
					done[j] = true
					src.Complete(reqs[j], c.Cycle())
					tr.SlotEnd(c.Cycle(), j)
				}
			}
		}

		// Clean-up pass: the next group may only start once every member of
		// this one has fully finished.
		finishSequential(c, src.Stage, states[:g], current[:g], done[:g], func(j int) {
			src.Complete(reqs[j], c.Cycle())
			tr.SlotEnd(c.Cycle(), j)
		})
		tr.GroupEnd(c.Cycle(), g)
	}
}

// SoftwarePipelineStream serves requests under Software-Pipelined
// Prefetching semantics: inflight pipeline slots advance one code stage per
// outer iteration, and a slot accepts a new request only at its static
// refill point — after the provisioned number of stages has elapsed —
// regardless of whether its lookup actually finished earlier. Requests
// longer than the provisioned depth are bailed out and completed on the
// sequential side path, as in the batch engine.
func SoftwarePipelineStream[S any](c *memsim.Core, src Source[S], inflight int) {
	SoftwarePipelineStreamTraced(c, src, inflight, nil)
}

// SoftwarePipelineStreamTraced is SoftwarePipelineStream with an optional
// trace sink: each pipeline slot's occupancy records as a begin/end span
// (begin at admission, end at the slot's static refill point or bail-out),
// making SPP's fixed refill boundaries directly comparable to AMAC's
// per-completion refill in a trace viewer. Nil tracer keeps the untraced
// behaviour and allocation profile.
func SoftwarePipelineStreamTraced[S any](c *memsim.Core, src Source[S], inflight int, tr *obs.CoreTrace) {
	p := c.Profiler()
	p.Push(p.Frame("SPP"))
	defer p.Pop()
	admitF := p.Frame("admit")
	if inflight < 1 {
		inflight = 1
	}
	depth := src.ProvisionedStages()
	if depth < 1 {
		depth = 1
	}

	states, putStates := GetStates[S](inflight)
	defer putStates()
	slotsP := getPipeSlots(inflight)
	defer pipeSlotPool.Put(slotsP)
	slots := *slotsP

	// The bail-out side path stays nil until a lookup actually overruns the
	// provisioned depth, so the common no-bail run allocates nothing for it.
	var bailStates []S
	var bailCurrent []Outcome
	var bailReqs []Request

	exhausted := false
	waitUntil := uint64(0) // no arrivals before this cycle; skip re-polling
	occupied := 0          // slots holding a request (done or not)
	pending := 0           // bailed-out requests not yet finished

	for {
		if exhausted && occupied == 0 && pending == 0 {
			return
		}
		if occupied == 0 && pending == 0 && waitUntil > c.Cycle() {
			// Nothing in flight, nothing admitted, and a pull already
			// reported Wait: idle to the arrival. (Never idle before the
			// first pull attempt — requests may be ready at cycle 0.)
			p.Push(admitF)
			c.AdvanceTo(waitUntil)
			p.Pop()
		}
		for j := 0; j < inflight; j++ {
			slot := &slots[j]
			switch {
			case !slot.busy:
				if exhausted || c.Cycle() < waitUntil {
					continue
				}
				pullAt := c.Cycle()
				c.Instr(CostSPPStage)
				p.PushStage(0)
				pr := src.Pull(c, &states[j], c.Cycle())
				p.Pop()
				if pr.Status == Exhausted {
					exhausted = true
					continue
				}
				if pr.Status == Wait {
					waitUntil = waitCycle(c.Cycle(), pr.NextArrival)
					continue
				}
				tr.SlotStart(pullAt, j, pr.Req.Index)
				issuePrefetch(c, pr.Out)
				slot.busy = true
				slot.done = pr.Out.Done
				slot.age = 1
				slot.current = pr.Out
				slot.req = pr.Req
				occupied++
				if pr.Out.Done {
					src.Complete(pr.Req, c.Cycle())
				}
			case slot.done:
				// The request finished before its static slot expired: the
				// pipeline still spends an iteration checking it.
				c.Instr(CostSPPSkip)
				slot.age++
				if slot.age >= depth {
					slot.busy = false
					occupied--
					tr.SlotEnd(c.Cycle(), j)
				}
			default:
				stage := slot.current.NextStage
				visitAt := c.Cycle()
				c.Instr(CostSPPStage)
				p.PushStage(stage)
				out := src.Stage(c, &states[j], stage)
				p.Pop()
				slot.age++
				if out.Retry {
					slot.current.NextStage = out.NextStage
					slot.current.Prefetch = 0
					tr.SlotRetry(c.Cycle(), j, stage)
				} else {
					tr.StageVisit(visitAt, c.Cycle(), j, stage)
					issuePrefetch(c, out)
					slot.current = out
					if out.Done {
						slot.done = true
						src.Complete(slot.req, c.Cycle())
					}
				}
				if slot.age >= depth {
					if !slot.done {
						// Longer than provisioned: bail out of the pipeline.
						c.Instr(CostBailout)
						bailStates = append(bailStates, states[j])
						bailCurrent = append(bailCurrent, slot.current)
						bailReqs = append(bailReqs, slot.req)
						pending++
					}
					slot.busy = false
					occupied--
					tr.SlotEnd(c.Cycle(), j)
				}
			}
		}

		// Advance every bailed-out request by one (unprefetched) stage.
		keep := 0
		for b := 0; b < len(bailStates); b++ {
			c.Instr(CostLoopIter)
			p.Push(p.Frame("bail"))
			p.PushStage(bailCurrent[b].NextStage)
			out := src.Stage(c, &bailStates[b], bailCurrent[b].NextStage)
			p.Pop()
			p.Pop()
			switch {
			case out.Retry:
				c.Instr(CostRetrySpin)
				bailCurrent[b].NextStage = out.NextStage
			case out.Done:
				src.Complete(bailReqs[b], c.Cycle())
				pending--
				continue
			default:
				bailCurrent[b] = out
			}
			bailStates[keep] = bailStates[b]
			bailCurrent[keep] = bailCurrent[b]
			bailReqs[keep] = bailReqs[b]
			keep++
		}
		bailStates = bailStates[:keep]
		bailCurrent = bailCurrent[:keep]
		bailReqs = bailReqs[:keep]

		c.Instr(CostLoopIter)
	}
}

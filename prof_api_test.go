package amac_test

import (
	"bytes"
	"strings"
	"testing"

	"amac"
)

// TestCycleProfilePublicAPI drives a profiled run end to end through the
// exported API: attach a per-core profiler, run the AMAC probe, and read the
// attribution back three ways — conservation against the core's cycle
// counter, the breakdown summary, and the folded flamegraph export with the
// engine's context frames in it.
func TestCycleProfilePublicAPI(t *testing.T) {
	join, out := hotColdJoin(t)
	c := amac.MustSystem(amac.XeonX5670()).NewCore()

	pr := amac.NewCycleProfile()
	c.SetProfiler(pr.Core("core 0"))
	amac.Run(c, join.ProbeMachine(out, false), amac.Options{Width: 8})
	c.SetProfiler(nil)

	cp := pr.Cores()[0]
	cycles := c.Stats().Cycles
	if got := cp.TotalCycles(); got != cycles {
		t.Fatalf("attributed %d cycles, core counted %d — conservation broken", got, cycles)
	}
	b := cp.Breakdown()
	if got := b.Total(); got != cycles {
		t.Fatalf("breakdown sums to %d cycles, core counted %d", got, cycles)
	}
	var catSum uint64
	for _, cat := range amac.CycleCategories {
		catSum += b.Cats[cat]
	}
	if catSum != cycles {
		t.Fatalf("category totals sum to %d cycles, core counted %d", catSum, cycles)
	}
	if b.Cats[amac.CycleCompute] == 0 {
		t.Fatal("a probe run charged no compute cycles")
	}

	var folded bytes.Buffer
	if err := pr.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(folded.String(), "AMAC") {
		t.Fatal("folded export is missing the AMAC engine frame")
	}
	var pb bytes.Buffer
	if err := pr.WritePprof(&pb); err != nil {
		t.Fatal(err)
	}
	if pb.Len() == 0 {
		t.Fatal("pprof export is empty")
	}
}

// TestDisabledProfilerZeroAllocPublicAPI asserts the disabled profiling path
// — a nil profiler threaded through the exported types — allocates nothing
// at any charge or context site. This is the contract that lets the memory
// system and every engine carry the instrumentation unconditionally.
func TestDisabledProfilerZeroAllocPublicAPI(t *testing.T) {
	var pr *amac.CycleProfile
	allocs := testing.AllocsPerRun(200, func() {
		cp := pr.Core("core 0")
		f := cp.Frame("AMAC")
		cp.Push(f)
		cp.PushStage(2)
		cp.Charge(amac.CycleDRAM, 180)
		cp.Charge(amac.CycleCompute, 3)
		cp.Hide(amac.CycleDRAM, 180)
		cp.Expose(amac.CycleDRAM, 40)
		cp.OffchipFill(180)
		cp.Pop()
		cp.Pop()
		cp.ResetCounts()
		cp.Merge(nil)
		_ = cp.Name()
		_ = cp.Depth()
		_ = cp.TotalCycles()
		_ = cp.CatCycles(amac.CycleDRAM)
		_ = cp.SumUnder("admit", amac.CycleIdle)
		_ = pr.Cores()
		_ = pr.TotalCycles()
	})
	if allocs != 0 {
		t.Fatalf("disabled profiling path allocates %.1f times per run, want 0", allocs)
	}
}

package amac

import (
	"amac/internal/exec"
	"amac/internal/memsim"
)

// This file exports the sharded multi-core execution layer: partition a
// Machine's lookups across W workers, simulate every worker in full on a
// private Core (each on its own goroutine), and merge the per-worker stats —
// elapsed cycles are the slowest worker's, event counters are summed. See
// the scaleN experiment for the end-to-end recipe on a partitioned hash
// join.

// ShardRange is the half-open range of lookup indices [Lo, Lo+N) assigned to
// one worker.
type ShardRange = exec.ShardRange

// SplitLookups partitions n lookups across workers as evenly as possible.
func SplitLookups(n, workers int) []ShardRange { return exec.SplitLookups(n, workers) }

// Shard views lookups [Lo, Lo+N) of an underlying machine as a standalone
// machine with local indices, so any engine can run one worker's share of
// the work. Sharding is safe when workers only read shared structures and
// write worker-private outputs; mutating operators need partitioned
// workloads (PartitionJoin) instead.
type Shard[S any] = exec.Shard[S]

// ParallelStats is the merged outcome of one RunParallel invocation.
type ParallelStats = exec.ParallelStats

// RunParallel executes body(w, cores[w]) for every worker on its own
// goroutine, waits for all workers, and merges the per-core stats. Each core
// must come from its own System (cores are not safe for concurrent use and
// systems share an LLC and off-chip queue model); use Hardware.ShareLLC to
// approximate W workers sharing one socket's LLC.
func RunParallel(cores []*Core, body func(worker int, c *Core)) ParallelStats {
	return exec.RunParallel(cores, body)
}

// MergeStats combines stats from workers that simulated concurrently:
// Cycles is the slowest worker's elapsed count, every other counter is
// summed.
func MergeStats(perWorker []Stats) Stats { return memsim.MergeParallel(perWorker) }

package amac

import "amac/internal/prof"

// This file exports the cycle-attribution profiler: an exact accounting of
// every simulated core cycle to a (context stack, category) cell, where the
// context stack is what the engines push (technique, stage number,
// probe/exploit epoch, pipeline stage, serving admission) and the category is
// what the memory system charges (compute, per-level exposed stall, TLB,
// MSHR pressure, idle). Attribution totals reconcile exactly with
// Stats.Cycles — conservation is an invariant, not an approximation. Like the
// observability sinks, a nil profiler is the disabled state: every method on
// a nil receiver is a single-branch no-op that allocates nothing, so
// instrumented code threads the pointers unconditionally and a profiled run
// is byte-identical to an unprofiled one. Attach through Core.SetProfiler,
// ServiceOptions.Profile or ExperimentConfig.Profile; export with
// WriteFolded (flamegraph.pl/speedscope) or WritePprof (go tool pprof).

// CycleProfile is the root profiler registry: named per-core cycle
// attributions, registered through Core and aggregated with Merged. nil
// disables profiling.
type CycleProfile = prof.Profile

// NewCycleProfile creates an empty profiler registry.
func NewCycleProfile() *CycleProfile { return prof.NewProfile() }

// CoreCycleProfile is one simulated core's cycle attribution, handed out by
// CycleProfile.Core and accepted by Core.SetProfiler. All methods no-op on
// nil.
type CoreCycleProfile = prof.CoreProf

// NewCoreCycleProfile creates a standalone per-core profiler. Most callers
// obtain one through CycleProfile.Core instead.
func NewCoreCycleProfile(name string) *CoreCycleProfile { return prof.NewCoreProf(name) }

// CycleCategory is a cycle-attribution category; every simulated cycle is
// charged to exactly one.
type CycleCategory = prof.Cat

// The attribution categories, in charge order.
const (
	CycleCompute  = prof.CatCompute
	CycleL1       = prof.CatL1
	CycleL2       = prof.CatL2
	CycleLLC      = prof.CatLLC
	CycleDRAM     = prof.CatDRAM
	CycleTLB      = prof.CatTLB
	CycleMSHRFull = prof.CatMSHRFull
	CycleIdle     = prof.CatIdle
)

// CycleCategories lists every attribution category in charge order.
var CycleCategories = prof.Cats

// CycleBreakdown is a per-core attribution summary: per-category totals,
// hidden versus exposed fill latency, and the achieved memory-level
// parallelism they imply.
type CycleBreakdown = prof.Breakdown

// ProfileFrame is an interned context label for CoreCycleProfile.Push,
// obtained from CoreCycleProfile.Frame.
type ProfileFrame = prof.Frame

#!/bin/sh
# trace.sh — capture a Perfetto-loadable trace and a metrics time series from
# one experiment run.
#
# Produces two artifacts in the output directory:
#   1. <exp>_<scale>.trace.json: Chrome trace-event JSON of the designated
#      traced cell (slot lifecycle spans, controller decision instants,
#      queue/pipe depth counters). Load it at https://ui.perfetto.dev or
#      chrome://tracing. One simulated cycle renders as one microsecond.
#   2. <exp>_<scale>.metrics.jsonl: gauge samples (width, MSHR occupancy,
#      queue depth, sliding p99, stall fraction) as JSON Lines, one sample
#      per line — ready for jq or a dataframe load.
#
# Usage:
#   scripts/trace.sh [outdir]
#   EXP=serveN SCALE=small scripts/trace.sh out
#
# EXP must be one of the traceable experiments (serveN, adaptN, pipeN, obsN,
# faultN); pipeN records a trace but no metrics, so the metrics pass is
# skipped for it. Tracing never changes simulated results — the tables printed here are
# byte-identical to an untraced run (TestObservabilityDifferential holds the
# module to that).

set -eu

outdir="${1:-.}"
exp="${EXP:-adaptN}"
scale="${SCALE:-tiny}"
interval="${INTERVAL:-}" # unset/empty = the 4096-cycle default

mkdir -p "$outdir"
trace="$outdir/${exp}_${scale}.trace.json"
metrics="$outdir/${exp}_${scale}.metrics.jsonl"

case "$exp" in
pipeN)
	echo ">> amacbench -exp $exp -scale $scale -trace $trace"
	go run ./cmd/amacbench -exp "$exp" -scale "$scale" -trace "$trace"
	;;
*)
	echo ">> amacbench -exp $exp -scale $scale -trace $trace -metrics $metrics"
	if [ -n "$interval" ]; then
		go run ./cmd/amacbench -exp "$exp" -scale "$scale" \
			-trace "$trace" -metrics "$metrics" -metrics-interval "$interval"
	else
		go run ./cmd/amacbench -exp "$exp" -scale "$scale" \
			-trace "$trace" -metrics "$metrics"
	fi
	;;
esac

echo ">> wrote $trace — load it at https://ui.perfetto.dev"

#!/bin/sh
# profile.sh — capture the cycle-attribution profile of one experiment run.
#
# Produces two artifacts in the output directory:
#   1. <exp>_<scale>.folded: folded flamegraph stacks, one
#      "core;frame;...;frame category cycles" line per leaf — feed it to
#      flamegraph.pl or drop it into https://www.speedscope.app.
#   2. <exp>_<scale>.pb.gz: the same attribution as a gzipped pprof proto —
#      `go tool pprof -top <file>` works out of the box.
#
# Usage:
#   scripts/profile.sh [outdir]
#   EXP=serveN SCALE=small scripts/profile.sh out
#
# EXP must be one of the profiled experiments (profN, serveN). Profiling
# never changes simulated results — the tables printed here are
# byte-identical to an unprofiled run (TestProfiledDifferential holds the
# module to that).

set -eu

outdir="${1:-.}"
exp="${EXP:-profN}"
scale="${SCALE:-tiny}"

mkdir -p "$outdir"
folded="$outdir/${exp}_${scale}.folded"
pprof="$outdir/${exp}_${scale}.pb.gz"

echo ">> amacbench -exp $exp -scale $scale -flame $folded -profile $pprof"
go run ./cmd/amacbench -exp "$exp" -scale "$scale" -flame "$folded" -profile "$pprof"

echo ">> wrote $folded — render with flamegraph.pl or https://www.speedscope.app"
echo ">> wrote $pprof — inspect with: go tool pprof -top $pprof"

#!/bin/sh
# bench.sh — run the full simulator benchmark suite and record the results.
#
# Produces two artifacts:
#   1. BENCH_pr4.json (via `amacbench -bench`): per-benchmark ns/op,
#      allocs/op and simulated cycles, machine-readable.
#   2. bench_gotest.txt: the raw `go test -bench` output for the bench_test.go
#      suite, which is the wall-clock baseline the perf work is judged by.
#
# To compare two revisions, run this script on each and diff the ns/op
# columns (benchstat works on the bench_gotest.txt files):
#
#   git checkout <before> && scripts/bench.sh out-before
#   git checkout <after>  && scripts/bench.sh out-after
#   benchstat out-before/bench_gotest.txt out-after/bench_gotest.txt
#
# The simulated-cycle columns of BENCH_pr4.json must be identical between
# revisions: optimizations may change how fast the model runs, never what it
# computes (the golden cycle-count tests enforce the same invariant).

set -eu

outdir="${1:-.}"
benchtime="${BENCHTIME:-300ms}"
scale="${SCALE:-tiny}"

mkdir -p "$outdir"

echo ">> go test -bench (benchtime $benchtime)"
go test -run '^$' -bench . -benchmem -benchtime "$benchtime" . | tee "$outdir/bench_gotest.txt"

echo ">> amacbench -bench (scale $scale)"
go run ./cmd/amacbench -bench -benchout "$outdir/BENCH_pr4.json" -scale "$scale"

echo ">> wrote $outdir/bench_gotest.txt and $outdir/BENCH_pr4.json"

package amac

import (
	"amac/internal/experiments"
	"amac/internal/profile"
)

// Experiment identifies one reproducible artifact of the paper's evaluation
// (a figure's data series or a table).
type Experiment = experiments.Descriptor

// ExperimentConfig parameterizes an experiment run (scale, seed, window).
type ExperimentConfig = experiments.Config

// Scale selects experiment dataset sizes.
type Scale = experiments.Scale

// Experiment scales: Tiny for smoke tests, Small for the default
// reproduction, PaperScale for the paper's original tuple counts.
const (
	TinyScale  = experiments.Tiny
	SmallScale = experiments.Small
	PaperScale = experiments.Paper
)

// ResultTable is a named grid of measurements mirroring one paper artifact.
type ResultTable = profile.Table

// Experiments returns every registered experiment, sorted by id.
func Experiments() []Experiment { return experiments.Registry() }

// RunExperiment regenerates the artifact with the given id ("fig5b",
// "table3", ...). See EXPERIMENTS.md for the per-experiment index.
func RunExperiment(id string, cfg ExperimentConfig) ([]*ResultTable, error) {
	return experiments.Run(id, cfg)
}

package amac

import (
	"amac/internal/ht"
	"amac/internal/ops"
	"amac/internal/relation"
)

// Tuple is the 16-byte columnar tuple (8-byte key, 8-byte payload) used by
// every workload in the paper.
type Tuple = relation.Tuple

// Relation is an in-memory column of tuples.
type Relation = relation.Relation

// JoinSpec describes a hash-join workload: build and probe sizes and the
// Zipf skew of each relation's keys (the paper's [Z_R, Z_S]).
type JoinSpec = relation.JoinSpec

// BuildJoin generates the build (R) and probe (S) relations for a hash join.
func BuildJoin(spec JoinSpec) (build, probe *Relation, err error) {
	return relation.BuildJoin(spec)
}

// GroupBySpec describes a group-by workload.
type GroupBySpec = relation.GroupBySpec

// BuildGroupBy generates a group-by input relation.
func BuildGroupBy(spec GroupBySpec) (*Relation, error) { return relation.BuildGroupBy(spec) }

// BuildIndexWorkload generates the unique-key build relation and matching
// probe relation used by the tree and skip list workloads.
func BuildIndexWorkload(n int, seed uint64) (build, probe *Relation, err error) {
	return relation.BuildIndexWorkload(n, seed)
}

// ZipfKeys returns n keys drawn from a Zipf(theta) popularity distribution
// over [1, domain], hot ranks scattered through the key space by a
// seed-deterministic permutation (numeric adjacency would give hot keys
// artificial cache locality). theta 0 is uniform. It is the reusable
// generator behind every skewed workload here: the adaptN experiment's
// hot-then-cold probe phases draw from it, and examples/hashjoin_skew uses
// it for probe-side skew.
func ZipfKeys(n int, domain uint64, theta float64, seed uint64) []uint64 {
	return relation.ZipfKeys(n, domain, theta, seed)
}

// KeyedRelation builds a relation from explicit keys (for example a
// ZipfKeys draw), with payloads payloadBase+i so every tuple stays
// distinguishable in checksums.
func KeyedRelation(name string, keys []uint64, payloadBase uint64) *Relation {
	return relation.KeyedRelation(name, keys, payloadBase)
}

// HashJoin is a hash-join workload materialized in a simulated arena: the
// chained hash table plus the build and probe relations. Its machines run
// under any Technique.
type HashJoin = ops.HashJoin

// NewHashJoin materializes a join workload with the reference bucket sizing
// (two tuples per bucket header).
func NewHashJoin(build, probe *Relation) *HashJoin { return ops.NewHashJoin(build, probe) }

// NewHashJoinWithBuckets materializes a join workload with an explicit
// bucket count.
func NewHashJoinWithBuckets(build, probe *Relation, buckets int) *HashJoin {
	return ops.NewHashJoinWithBuckets(build, probe, buckets)
}

// PartitionedHashJoin is a hash join split into independent per-worker
// workloads (private arena, table and relations each) so the parallel
// execution layer's workers never share a table. Probe machines created
// through it carry global row ids, so the workers' merged output matches an
// unpartitioned run.
type PartitionedHashJoin = ops.PartitionedHashJoin

// PartitionJoin hash-partitions the build and probe relations into parts
// independent workloads; equal keys always land in the same partition.
func PartitionJoin(build, probe *Relation, parts int) *PartitionedHashJoin {
	return ops.PartitionJoin(build, probe, parts)
}

// GroupBy is a group-by workload materialized in a simulated arena.
type GroupBy = ops.GroupBy

// NewGroupBy materializes a group-by workload sized for the expected number
// of distinct groups.
func NewGroupBy(rel *Relation, expectedGroups int) *GroupBy {
	return ops.NewGroupBy(rel, expectedGroups)
}

// Aggregates is the materialized result of one group-by group (count, sum,
// sum of squares, min, max; Avg is derived).
type Aggregates = ht.Aggregates

// BSTWorkload is a binary-search-tree search workload.
type BSTWorkload = ops.BSTWorkload

// NewBSTWorkload builds the tree index and materializes the probes.
func NewBSTWorkload(build, probe *Relation) *BSTWorkload { return ops.NewBSTWorkload(build, probe) }

// SkipListWorkload is a skip list search/insert workload.
type SkipListWorkload = ops.SkipListWorkload

// NewSkipListWorkload materializes the relations for skip list experiments.
func NewSkipListWorkload(build, probe *Relation) *SkipListWorkload {
	return ops.NewSkipListWorkload(build, probe)
}

// Output collects materialized operator results and charges their stores.
type Output = ops.Output

// NewOutput creates a result collector in the given arena; keep retains the
// individual rows for inspection (tests, examples) in addition to the count
// and checksum.
func NewOutput(a *Arena, keep bool) *Output { return ops.NewOutput(a, keep) }

// JoinRow is one materialized join or index-lookup result.
type JoinRow = ops.JoinRow

// Machines (implementations of Machine) for the paper's operators.
type (
	// ProbeMachine is the hash join probe operator.
	ProbeMachine = ops.ProbeMachine
	// BuildMachine is the hash join build operator.
	BuildMachine = ops.BuildMachine
	// GroupByMachine is the group-by operator with immediate aggregation.
	GroupByMachine = ops.GroupByMachine
	// BSTSearchMachine is the binary-search-tree search operator.
	BSTSearchMachine = ops.BSTSearchMachine
	// SkipListSearchMachine is the skip list search operator.
	SkipListSearchMachine = ops.SkipListSearchMachine
	// SkipListInsertMachine is the skip list insert operator.
	SkipListInsertMachine = ops.SkipListInsertMachine
)

// Per-lookup state types of the built-in machines, exported so the generic
// entry points (Run, Shard) can be instantiated explicitly, e.g.
// Shard[ProbeState]{...}.
type (
	// ProbeState is ProbeMachine's per-lookup state.
	ProbeState = ops.ProbeState
	// BuildState is BuildMachine's per-lookup state.
	BuildState = ops.BuildState
	// GroupByState is GroupByMachine's per-lookup state.
	GroupByState = ops.GroupByState
	// BSTState is BSTSearchMachine's per-lookup state.
	BSTState = ops.BSTState
	// SkipListSearchState is SkipListSearchMachine's per-lookup state.
	SkipListSearchState = ops.SkipListSearchState
	// SkipListInsertState is SkipListInsertMachine's per-lookup state.
	SkipListInsertState = ops.SkipListInsertState
)

package amac

import (
	"amac/internal/fault"
	"amac/internal/serve"
)

// This file exports the fault-injection and graceful-degradation layer:
// deterministic chaos schedules applied on the simulated clock (shard
// slowdown, freeze, crash with cold-cache restart, arrival spikes),
// per-request deadlines, and the recovery policies — capped-backoff retry,
// hedged re-dispatch, per-shard circuit breakers and an SLO-aware brownout
// — that keep a degraded service's surviving tail bounded (see the faultN
// experiment).

// FaultKind discriminates fault episodes (slow, freeze, crash, spike).
type FaultKind = fault.Kind

// The fault episode kinds.
const (
	FaultSlow   = fault.Slow
	FaultFreeze = fault.Freeze
	FaultCrash  = fault.Crash
	FaultSpike  = fault.Spike
)

// FaultEpisode is one fault applied to one shard over [Start, Start+Dur)
// simulated cycles.
type FaultEpisode = fault.Episode

// FaultSchedule is a set of episodes, sorted by start cycle, with at most
// one active episode per shard at any instant.
type FaultSchedule = fault.Schedule

// ParseFaults parses a chaos-schedule spec: either a comma-separated
// episode list ("slow:0@20000+40000x4,crash:1@90000+30000", tokens
// kind:shard@start+dur[xfactor]) or a seeded random request
// ("rand:SEED[:N]") that RunFaultyService materializes once the shard count
// and horizon are known.
func ParseFaults(spec string) (fault.Spec, error) {
	return fault.ParseSpec(spec)
}

// RandomFaults draws a seeded random schedule of n episodes across the
// given shards and horizon — deterministic for a fixed seed.
func RandomFaults(seed uint64, n, shards int, horizon uint64) *FaultSchedule {
	return fault.Random(seed, n, shards, horizon)
}

// RetryPolicy is capped exponential backoff for requests whose last live
// copy timed out or was crash-dropped.
type RetryPolicy = fault.RetryPolicy

// HedgePolicy duplicates a still-unserved request onto a healthy sibling
// shard after Delay cycles; the first completion wins.
type HedgePolicy = fault.HedgePolicy

// BreakerConfig configures the per-shard circuit breaker: an EWMA of the
// shard's per-round timeout fraction opens the breaker (arrivals reroute to
// siblings), a cooldown moves it to half-open, and successful probes close
// it again.
type BreakerConfig = fault.BreakerConfig

// BreakerTransition is one breaker state change on the simulated clock.
type BreakerTransition = fault.Transition

// SLO configures the brownout controller: a sliding-p99 budget and the
// request classes load is shed by when the budget is exceeded.
type SLO = fault.SLO

// FaultyServiceOptions configures a fault-injected service run: the plain
// ServiceOptions plus a chaos schedule, per-request deadlines and the
// recovery policies layered on top of the shards.
type FaultyServiceOptions = serve.FaultyOptions

// FaultInfo summarises a run's fault activity (episodes applied, deepest
// brownout shed level, breaker transitions); ServiceResult.Faults and
// PerWorker[w].Faults carry it for fault-injected runs.
type FaultInfo = serve.FaultInfo

// RunFaultyService executes a sharded streaming service under deterministic
// fault injection: the same share-nothing per-worker simulations as
// RunService, but stepped by one coordinator in slices of the simulated
// clock so the chaos timeline, deadlines, hedging, breakers and brownout
// apply at identical simulated instants on every execution. A zero-fault,
// zero-policy run is bit-identical to RunService on the same configuration.
func RunFaultyService[S any](opts FaultyServiceOptions, workers []ServiceWorker[S]) ServiceResult {
	return serve.RunFaulty(opts, workers)
}

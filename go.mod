module amac

go 1.24

package amac_test

import (
	"reflect"
	"testing"

	"amac"
)

// faultServiceWorkers builds a two-worker partitioned-join service fixture
// and returns the workers plus the total request count.
func faultServiceWorkers(t *testing.T) ([]amac.ServiceWorker[amac.ProbeState], int) {
	t.Helper()
	const workers = 2
	build, probe, err := amac.BuildJoin(amac.JoinSpec{BuildSize: 1 << 10, ProbeSize: 1 << 10, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	pj := amac.PartitionJoin(build, probe, workers)
	pj.PrebuildRaw()
	specs := make([]amac.ServiceWorker[amac.ProbeState], workers)
	for w := 0; w < workers; w++ {
		out := amac.NewOutput(pj.Parts[w].Arena, false)
		out.Sequential = true
		specs[w] = amac.ServiceWorker[amac.ProbeState]{
			Machine:  pj.ProbeMachine(w, out, true),
			Arrivals: amac.Deterministic{Period: 500}.Schedule(pj.Parts[w].Probe.Len(), 0),
		}
	}
	return specs, probe.Len()
}

// TestFaultPublicAPIZeroConfigMatchesRunService checks the exported
// RunFaultyService with no faults and no policies reproduces RunService
// bit-identically — the invariant that makes fault runs trustworthy as
// perturbations of a known-good baseline.
func TestFaultPublicAPIZeroConfigMatchesRunService(t *testing.T) {
	opts := amac.ServiceOptions{
		Hardware:  amac.XeonX5670(),
		Technique: amac.AMAC,
		Window:    8,
	}
	specs, n := faultServiceWorkers(t)
	clean := amac.RunService(opts, specs)

	specs, _ = faultServiceWorkers(t)
	faulty := amac.RunFaultyService(amac.FaultyServiceOptions{Options: opts}, specs)

	if !reflect.DeepEqual(clean.Stats, faulty.Stats) {
		t.Fatalf("core stats diverge:\nclean  %+v\nfaulty %+v", clean.Stats, faulty.Stats)
	}
	if !reflect.DeepEqual(clean.Latency, faulty.Latency) {
		t.Fatal("latency recorders diverge")
	}
	if !reflect.DeepEqual(clean.Sched, faulty.Sched) {
		t.Fatalf("scheduler stats diverge:\nclean  %+v\nfaulty %+v", clean.Sched, faulty.Sched)
	}
	if faulty.Faults == nil || faulty.Faults.Episodes != 0 {
		t.Fatalf("zero-config fault summary = %+v, want zero episodes", faulty.Faults)
	}
	if faulty.Latency.Completed != uint64(n) {
		t.Fatalf("completed %d of %d", faulty.Latency.Completed, n)
	}
}

// TestFaultPublicAPIParseAndInject round-trips a schedule through
// ParseFaults and checks an injected slowdown is applied (episode counted,
// run slower than clean) while every request still completes.
func TestFaultPublicAPIParseAndInject(t *testing.T) {
	spec, err := amac.ParseFaults("slow:0@4000+40000x6")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Sched == nil || len(spec.Sched.Episodes) != 1 {
		t.Fatalf("parsed spec %+v, want one scripted episode", spec)
	}
	ep := spec.Sched.Episodes[0]
	if ep.Kind != amac.FaultSlow || ep.Shard != 0 || ep.Start != 4000 || ep.Dur != 40000 || ep.Factor != 6 {
		t.Fatalf("parsed episode %+v", ep)
	}

	opts := amac.ServiceOptions{
		Hardware:  amac.XeonX5670(),
		Technique: amac.AMAC,
		Window:    8,
	}
	specs, n := faultServiceWorkers(t)
	clean := amac.RunService(opts, specs)

	specs, _ = faultServiceWorkers(t)
	faulty := amac.RunFaultyService(amac.FaultyServiceOptions{
		Options: opts,
		Faults:  spec.Sched,
	}, specs)

	if faulty.Faults == nil || faulty.Faults.Episodes != 1 {
		t.Fatalf("fault summary = %+v, want one episode", faulty.Faults)
	}
	if faulty.Latency.Completed != uint64(n) {
		t.Fatalf("completed %d of %d under slowdown", faulty.Latency.Completed, n)
	}
	// The run is arrival-bound, so elapsed cycles barely move; the slowdown
	// shows up as extra stall time and a fatter tail on the slowed shard.
	if faulty.PerWorker[0].Stats.StallCycles <= clean.PerWorker[0].Stats.StallCycles {
		t.Fatalf("slowed shard stalled %d cycles, clean %d — slowdown not applied",
			faulty.PerWorker[0].Stats.StallCycles, clean.PerWorker[0].Stats.StallCycles)
	}
	if faulty.PerWorker[0].Latency.P99() <= clean.PerWorker[0].Latency.P99() {
		t.Fatalf("slowed shard p99 %d, clean %d — tail unaffected",
			faulty.PerWorker[0].Latency.P99(), clean.PerWorker[0].Latency.P99())
	}

	if _, err := amac.ParseFaults("slow:0@bogus"); err == nil {
		t.Fatal("malformed spec accepted")
	}
	// Random drops draws that would overlap an earlier episode on the same
	// shard, so n is a cap, not an exact count.
	sched := amac.RandomFaults(7, 3, 2, 1_000_000)
	if sched == nil || sched.Empty() || len(sched.Episodes) > 3 {
		t.Fatalf("RandomFaults returned %v", sched)
	}
	if err := sched.Validate(2); err != nil {
		t.Fatalf("random schedule invalid: %v", err)
	}
}

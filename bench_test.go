package amac_test

import (
	"fmt"
	"testing"

	"amac"
)

// ---------------------------------------------------------------------------
// One benchmark per paper artifact. Each iteration regenerates the artifact
// at smoke scale through the same code path as `amacbench -exp <id>`; use
// `go run ./cmd/amacbench -exp <id> -scale small` for report-quality numbers
// (EXPERIMENTS.md records those next to the paper's values).
// ---------------------------------------------------------------------------

func benchmarkExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := amac.RunExperiment(id, amac.ExperimentConfig{Scale: amac.TinyScale, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkFig3(b *testing.B)        { benchmarkExperiment(b, "fig3") }
func BenchmarkTable3(b *testing.B)      { benchmarkExperiment(b, "table3") }
func BenchmarkFig5a(b *testing.B)       { benchmarkExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)       { benchmarkExperiment(b, "fig5b") }
func BenchmarkFig6(b *testing.B)        { benchmarkExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)        { benchmarkExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)        { benchmarkExperiment(b, "fig8") }
func BenchmarkTable4(b *testing.B)      { benchmarkExperiment(b, "table4") }
func BenchmarkFig9(b *testing.B)        { benchmarkExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)       { benchmarkExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)       { benchmarkExperiment(b, "fig11") }
func BenchmarkFig12a(b *testing.B)      { benchmarkExperiment(b, "fig12a") }
func BenchmarkFig12b(b *testing.B)      { benchmarkExperiment(b, "fig12b") }
func BenchmarkFig13(b *testing.B)       { benchmarkExperiment(b, "fig13") }
func BenchmarkAblInflight(b *testing.B) { benchmarkExperiment(b, "abl-inflight") }
func BenchmarkAblRefill(b *testing.B)   { benchmarkExperiment(b, "abl-refill") }
func BenchmarkAblMSHR(b *testing.B)     { benchmarkExperiment(b, "abl-mshr") }

// ---------------------------------------------------------------------------
// Technique micro-benchmarks: wall-clock cost of simulating one probe,
// with the simulated cycles-per-tuple reported as a custom metric so the
// paper's headline comparison is visible directly in the benchmark output.
// ---------------------------------------------------------------------------

func benchmarkProbe(b *testing.B, tech amac.Technique, zipfBuild float64) {
	const size = 1 << 16
	build, probe, err := amac.BuildJoin(amac.JoinSpec{BuildSize: size, ProbeSize: size, ZipfBuild: zipfBuild, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	join := amac.NewHashJoin(build, probe)
	join.PrebuildRaw()

	var simCycles float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := amac.MustSystem(amac.XeonX5670())
		core := sys.NewCore()
		out := amac.NewOutput(join.Arena, false)
		amac.RunWith(core, join.ProbeMachine(out, zipfBuild == 0), tech, amac.Params{Window: 10})
		simCycles = float64(core.Cycle()) / float64(probe.Len())
	}
	b.ReportMetric(simCycles, "simcycles/tuple")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(probe.Len()), "ns/lookup")
}

func BenchmarkProbeUniform(b *testing.B) {
	for _, tech := range amac.Techniques {
		b.Run(tech.String(), func(b *testing.B) { benchmarkProbe(b, tech, 0) })
	}
}

func BenchmarkProbeSkewed(b *testing.B) {
	for _, tech := range amac.Techniques {
		b.Run(tech.String(), func(b *testing.B) { benchmarkProbe(b, tech, 1.0) })
	}
}

func BenchmarkGroupBy(b *testing.B) {
	rel, err := amac.BuildGroupBy(amac.GroupBySpec{Size: 1 << 15, Repeats: 3, Zipf: 0.5, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	for _, tech := range amac.Techniques {
		b.Run(tech.String(), func(b *testing.B) {
			var simCycles float64
			for i := 0; i < b.N; i++ {
				g := amac.NewGroupBy(rel, rel.Len()/3)
				sys := amac.MustSystem(amac.XeonX5670())
				core := sys.NewCore()
				amac.RunWith(core, g.Machine(), tech, amac.Params{Window: 10})
				simCycles = float64(core.Cycle()) / float64(rel.Len())
			}
			b.ReportMetric(simCycles, "simcycles/tuple")
		})
	}
}

func BenchmarkBSTSearch(b *testing.B) {
	build, probe, err := amac.BuildIndexWorkload(1<<15, 5)
	if err != nil {
		b.Fatal(err)
	}
	w := amac.NewBSTWorkload(build, probe)
	for _, tech := range amac.Techniques {
		b.Run(tech.String(), func(b *testing.B) {
			var simCycles float64
			for i := 0; i < b.N; i++ {
				sys := amac.MustSystem(amac.XeonX5670())
				core := sys.NewCore()
				out := amac.NewOutput(w.Arena, false)
				amac.RunWith(core, w.SearchMachine(out), tech, amac.Params{Window: 10})
				simCycles = float64(core.Cycle()) / float64(probe.Len())
			}
			b.ReportMetric(simCycles, "simcycles/lookup")
		})
	}
}

func BenchmarkSkipList(b *testing.B) {
	build, probe, err := amac.BuildIndexWorkload(1<<14, 9)
	if err != nil {
		b.Fatal(err)
	}
	for _, op := range []string{"Search", "Insert"} {
		for _, tech := range amac.Techniques {
			b.Run(fmt.Sprintf("%s/%s", op, tech), func(b *testing.B) {
				var simCycles float64
				for i := 0; i < b.N; i++ {
					w := amac.NewSkipListWorkload(build, probe)
					sys := amac.MustSystem(amac.XeonX5670())
					core := sys.NewCore()
					if op == "Search" {
						w.PrebuildRaw(9)
						out := amac.NewOutput(w.Arena, false)
						amac.RunWith(core, w.SearchMachine(out), tech, amac.Params{Window: 10})
						simCycles = float64(core.Cycle()) / float64(probe.Len())
					} else {
						amac.RunWith(core, w.InsertMachine(9), tech, amac.Params{Window: 10})
						simCycles = float64(core.Cycle()) / float64(build.Len())
					}
				}
				b.ReportMetric(simCycles, "simcycles/op")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Serving/streaming benchmarks: wall-clock cost of one open-loop serving run
// (queue-fed streaming engine on a recycled socket model) and of a fully
// backlogged stream replay, per technique. These cover the serving fast
// path: ring-buffer admission, pooled stream state, system recycling.
// ---------------------------------------------------------------------------

func benchmarkServe(b *testing.B, tech amac.Technique, arrivals []uint64, qcap int, policy amac.QueuePolicy, join *amac.HashJoin, out *amac.Output) {
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		out.Reset()
		res := amac.RunService(amac.ServiceOptions{
			Hardware:  amac.XeonX5670(),
			Technique: tech,
			Window:    10,
			QueueCap:  qcap,
			Policy:    policy,
		}, []amac.ServiceWorker[amac.ProbeState]{{
			Machine:  join.ProbeMachine(out, true),
			Arrivals: arrivals,
		}})
		cycles = res.ElapsedCycles()
	}
	b.ReportMetric(float64(cycles), "simcycles/run")
}

func serveBenchJoin(b *testing.B) (*amac.HashJoin, *amac.Output) {
	build, probe, err := amac.BuildJoin(amac.JoinSpec{BuildSize: 1 << 13, ProbeSize: 1 << 13, ZipfBuild: 1.0, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	join := amac.NewHashJoin(build, probe)
	join.PrebuildRaw()
	return join, amac.NewOutput(join.Arena, false)
}

func BenchmarkServeRun(b *testing.B) {
	join, out := serveBenchJoin(b)
	arrivals := amac.Poisson{MeanPeriod: 260}.Schedule(1<<13, 7)
	for _, tech := range amac.Techniques {
		b.Run(tech.String(), func(b *testing.B) {
			benchmarkServe(b, tech, arrivals, 0, amac.QueueBlock, join, out)
		})
	}
}

func BenchmarkStreamBacklog(b *testing.B) {
	join, out := serveBenchJoin(b)
	backlog := make([]uint64, 1<<13) // everything due at cycle 0
	for _, tech := range amac.Techniques {
		b.Run(tech.String(), func(b *testing.B) {
			benchmarkServe(b, tech, backlog, 0, amac.QueueBlock, join, out)
		})
	}
}

func BenchmarkServeDrop(b *testing.B) {
	join, out := serveBenchJoin(b)
	bursty := amac.Bursty{Period: 60, BurstLen: 128, Off: 24000}.Schedule(1<<13, 11)
	benchmarkServe(b, amac.AMAC, bursty, 64, amac.QueueDrop, join, out)
}

// ---------------------------------------------------------------------------
// Observability overhead: the same runs with the trace/metrics sinks off and
// on. The "off" arms are the guarded path — instrumentation is threaded
// through every engine unconditionally, so these must stay within noise of
// the pre-instrumentation numbers (the bench gate compares them against the
// committed baseline), and TestDisabledObsZeroAllocPublicAPI asserts the
// disabled event sites allocate nothing.
// ---------------------------------------------------------------------------

func benchmarkServeObs(b *testing.B, traced bool) {
	join, out := serveBenchJoin(b)
	arrivals := amac.Poisson{MeanPeriod: 260}.Schedule(1<<13, 7)
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		opts := amac.ServiceOptions{
			Hardware:  amac.XeonX5670(),
			Technique: amac.AMAC,
			Window:    10,
		}
		if traced {
			opts.Trace = amac.NewTrace(0)
			opts.Metrics = amac.NewMetrics(0)
		}
		out.Reset()
		res := amac.RunService(opts, []amac.ServiceWorker[amac.ProbeState]{{
			Machine:  join.ProbeMachine(out, true),
			Arrivals: arrivals,
		}})
		cycles = res.ElapsedCycles()
	}
	b.ReportMetric(float64(cycles), "simcycles/run")
}

func BenchmarkServeObs(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchmarkServeObs(b, false) })
	b.Run("on", func(b *testing.B) { benchmarkServeObs(b, true) })
}

func benchmarkStreamObs(b *testing.B, tr *amac.Trace) {
	join, out := serveBenchJoin(b)
	sys := amac.MustSystem(amac.XeonX5670())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Reset()
		c := sys.NewCore()
		amac.RunStream(c, amac.NewMachineSource(join.ProbeMachine(out, false)),
			amac.Options{Width: 10, Trace: tr.Core("bench core")})
	}
}

func BenchmarkStreamObs(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchmarkStreamObs(b, nil) })
	b.Run("on", func(b *testing.B) { benchmarkStreamObs(b, amac.NewTrace(0)) })
}

// BenchmarkSimulatorLoad measures the raw cost of the memory-hierarchy model
// itself (the substrate every other number is built on).
func BenchmarkSimulatorLoad(b *testing.B) {
	sys := amac.MustSystem(amac.XeonX5670())
	core := sys.NewCore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.Load(amac.Addr((i%(1<<20))*64+64), 8)
	}
}

// BenchmarkSimulatorPrefetch measures the cost of issuing software prefetches.
func BenchmarkSimulatorPrefetch(b *testing.B) {
	sys := amac.MustSystem(amac.XeonX5670())
	core := sys.NewCore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.Prefetch(amac.Addr((i%(1<<20))*64 + 64))
		if i%4 == 3 {
			core.Load(amac.Addr((i%(1<<20))*64+64), 8)
		}
	}
}

// BenchmarkWorkloadGeneration measures relation generation (Zipf sampling and
// shuffling), which bounds how quickly large experiments can start.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := amac.BuildJoin(amac.JoinSpec{BuildSize: 1 << 16, ProbeSize: 1 << 16, ZipfBuild: 0.75, Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

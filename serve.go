package amac

import (
	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/serve"
)

// This file exports the streaming request-serving layer: open-loop load
// generation (deterministic, Poisson, bursty arrivals in simulated cycles),
// a bounded admission queue with drop/block policies, per-request
// admission→completion latency accounting, and streaming variants of all
// four execution engines. AMAC's streaming engine refills each
// circular-buffer slot the moment its lookup completes; the GP/SPP/Baseline
// stream adapters keep their batch-boundary refill restrictions, so the
// paper's flexibility argument becomes measurable as tail latency (see the
// serveN experiment and examples/serving).

// Request identifies one admitted lookup of a streaming run: the lookup
// index and the simulated cycle at which the request entered the system.
type Request = exec.Request

// PullStatus is a Source's answer to Pull: a request was admitted and
// initiated, none is available yet, or the stream ended.
type PullStatus = exec.PullStatus

// The three Pull answers.
const (
	Pulled    = exec.Pulled
	Wait      = exec.Wait
	Exhausted = exec.Exhausted
)

// PullResult carries a Pull's status, the initiated request's stage-0
// outcome, and (on Wait) the next arrival cycle.
type PullResult = exec.PullResult

// Source is a pull-based stream of lookups over per-lookup state S: the
// streaming engines draw work from it instead of iterating a fixed batch,
// and report completions back for latency accounting.
type Source[S any] = exec.Source[S]

// MachineSource adapts a fixed Machine batch to the Source interface (every
// lookup admitted at cycle 0), which lets a streaming engine replay a batch
// workload bit-identically.
type MachineSource[S any] = exec.MachineSource[S]

// NewMachineSource wraps a machine as an always-ready source.
func NewMachineSource[S any](m Machine[S]) *MachineSource[S] {
	return exec.NewMachineSource(m)
}

// ArrivalProcess generates an open-loop arrival schedule in simulated
// cycles.
type ArrivalProcess = serve.ArrivalProcess

// The built-in arrival processes.
type (
	// Deterministic spaces arrivals exactly Period cycles apart.
	Deterministic = serve.Deterministic
	// Poisson draws exponential inter-arrival gaps with the given mean.
	Poisson = serve.Poisson
	// Bursty emits on/off bursts: BurstLen requests spaced Period apart,
	// then Off idle cycles.
	Bursty = serve.Bursty
)

// ParseArrivals builds the named arrival process ("deterministic",
// "poisson", "bursty") at the given mean inter-arrival period.
func ParseArrivals(name string, period float64) (ArrivalProcess, error) {
	return serve.ParseArrivals(name, period)
}

// QueuePolicy says what a bounded admission queue does when full: Block
// delays admission (latency still counts from arrival), Drop rejects.
type QueuePolicy = serve.Policy

// The two queue policies.
const (
	QueueBlock = serve.Block
	QueueDrop  = serve.Drop
)

// LatencyRecorder accumulates per-request serving statistics: a log-linear
// latency histogram (p50/p95/p99/max within 12.5%), completion and drop
// counts, queue wait and queue depth.
type LatencyRecorder = serve.Recorder

// QueueSource feeds a streaming engine from a bounded admission queue
// filled by an open-loop arrival schedule; request i of the schedule is
// lookup i of the wrapped machine.
type QueueSource[S any] = serve.QueueSource[S]

// NewQueueSource builds a queue-fed source: the machine's lookups arrive at
// the given cycles, through a queue of the given capacity (zero =
// unbounded) and policy. Pass nil to allocate a fresh recorder; read it
// back with the source's Recorder method.
func NewQueueSource[S any](m Machine[S], arrivals []uint64, capacity int, policy QueuePolicy, rec *LatencyRecorder) *QueueSource[S] {
	return serve.NewQueueSource(m, arrivals, capacity, policy, rec)
}

// RunStream executes AMAC over a request stream: every circular-buffer slot
// refills from the source the moment its lookup completes, the property
// that keeps tail latency flat under load where batch-boundary refill does
// not. The core idles (Core.AdvanceTo) only when nothing is admitted and
// nothing is in flight.
func RunStream[S any](c *Core, src Source[S], opts Options) RunStats {
	return core.RunStream(c, src, opts)
}

// RunBaselineStream serves requests one at a time with no prefetching.
func RunBaselineStream[S any](c *Core, src Source[S]) {
	exec.BaselineStream(c, src)
}

// RunGroupPrefetchStream serves requests under Group Prefetching semantics:
// new requests are admitted only at group boundaries, after the previous
// group fully drained.
func RunGroupPrefetchStream[S any](c *Core, src Source[S], group int) {
	exec.GroupPrefetchStream(c, src, group)
}

// RunSoftwarePipelineStream serves requests under Software-Pipelined
// Prefetching semantics: a pipeline slot refills only at its static refill
// point, even when its lookup finished early.
func RunSoftwarePipelineStream[S any](c *Core, src Source[S], inflight int) {
	exec.SoftwarePipelineStream(c, src, inflight)
}

// RunSourceWith drives the selected technique's streaming engine over one
// source on one core — the streaming counterpart of RunWith. AMAC returns
// its scheduler stats; the other engines report only through the source.
func RunSourceWith[S any](c *Core, src Source[S], tech Technique, p Params) RunStats {
	return serve.RunSource(c, src, tech, p)
}

// ServiceWorker describes one worker of a sharded streaming service: its
// operator machine and the arrival schedule of the requests routed to it.
type ServiceWorker[S any] = serve.Worker[S]

// ServiceOptions configures a service run (hardware model, technique,
// window, queue bound and policy, optional per-worker cache warm-up).
type ServiceOptions = serve.Options

// ServiceResult is the merged outcome of a service run: per-worker and
// merged core stats (elapsed cycles = slowest worker), merged latency
// recorder, merged AMAC scheduler stats.
type ServiceResult = serve.Result

// RunService executes a sharded streaming service: every worker serves its
// machine from its own queue-fed source on a private core, concurrently on
// real goroutines, deterministically for a fixed configuration.
func RunService[S any](opts ServiceOptions, workers []ServiceWorker[S]) ServiceResult {
	return serve.Run(opts, workers)
}
